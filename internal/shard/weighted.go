package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/transport"
)

// WeightedEngine is the CSR-backed sharded execution engine for
// weighted tasks (Algorithm 2). State is a flat structure of arrays:
// shard s's task weights live in one contiguous pool with per-node
// offsets, and the cached per-node weight sums and the load snapshot
// are plain []float64 vectors — no per-node slice headers, no maps.
// Each round runs in the same three barrier-separated phases as the
// uniform Engine (snapshot loads, decide, commit) over P shards on a
// persistent worker pool.
//
// What makes the flat execution possible is the paper's own design
// decision: Algorithm 2's migration probability is independent of the
// moving task's weight, so the per-node decision needs only the task
// count, the cached node weight and the load snapshot
// (core.WeightedFlatProtocol), never the weight multiset. Tasks enter
// the picture only at commit, where the engine replays, per node, the
// exact operation sequence of the sequential core.ApplyMoves — same
// swap-deletes, same append order, same floating-point updates to the
// cached weight sums, same periodic weight recompute — so trajectories,
// traces and final task multisets are bit-identical to core.RunWeighted
// for any shard count, worker count and partition strategy.
//
// WeightedEngine implements core.Engine[*core.WeightedState] and
// core.DynamicEngine; public methods serialize on an internal mutex.
type WeightedEngine struct {
	sys   *core.System
	csr   *graph.CSR
	proto core.WeightedFlatProtocol
	part  *Partition

	mu sync.Mutex

	// Flat SoA state: node i of shard s owns the first segLen[s][i-lo]
	// elements of its segment. A pool-resident node's segment is
	// pool[s][off[s][i-lo] : off[s][i-lo+1]] — off is the fixed slot
	// layout, so a node whose count shrinks leaves slack at the end of
	// its slot and the commit mutates it in place, never moving its
	// neighbors. A node that outgrows its slot is privatized: its tasks
	// move once into a dedicated slice (priv[s][i-lo], amortized-doubling
	// capacity) and every later commit runs in place there. spare and
	// noff are the compaction scratch of the event paths, which rebuild a
	// touched shard into a packed layout and reset its private segments.
	pool   [][]float64
	spare  [][]float64
	off    [][]int64
	noff   [][]int64
	segLen [][]int64
	priv   [][][]float64

	nodeWeight []float64
	loads      []float64
	// view is the decide phase's read surface over loads: a zero-copy
	// dense alias in process, own-span + halo freshness in a cluster
	// worker (see LoadView).
	view           LoadView
	totalW         float64
	count          int64
	sinceRecompute int64

	// Decide outputs (indexed by shard, not worker, so the worker
	// striping cannot influence the trajectory). Each outbound entry is
	// one migrating task — unlike the uniform engine's per-edge
	// aggregates — stamped with its shard-local move index G, so the
	// committer can reconstruct the global move timeline from the flow
	// record plus the source shard's move base alone (see
	// transport.WFlow). That self-containment is what lets the lists
	// travel across a process boundary.
	outFlows [][][]transport.WFlow // outFlows[s][d]: tasks moving from shard s into shard d (d == s included)
	remIdx   [][]int32             // shard s's removal indices: source-ascending, idx-descending
	remPos   [][]int64             // per-node prefix into remIdx (len shardSize+1)
	moves    []int64               // per-shard move totals

	// tr exchanges the outbound flow lists across the decide/commit
	// barrier; memTransport in process, socket-backed in a cluster
	// worker.
	tr Transport

	// Commit scratch (indexed by destination shard): the arrival
	// buckets, filled in global source order.
	arrCnt  [][]int32
	arrFill [][]int32
	arrPos  [][]int64
	arrW    [][]float64
	arrG    [][]int64

	// Privatization arena (indexed by destination shard): private
	// segments are carved from monotone-doubling bump blocks instead of
	// individually allocated, so the commit's per-node privatizations
	// and regrowths amortize to O(log growth) allocations per shard —
	// the per-round cost is zero once the blocks reach working-set
	// size. arenaCur is the block being carved, arenaOff its fill
	// point; blocks that no longer fit a carve retire into arenaOld
	// (live segments still point into them). arenaDead counts floats
	// carved and later abandoned (a node re-carving a larger segment)
	// plus retired-block tails; when it exceeds the shard's pool
	// footprint the commit compacts the shard — rebuilding the packed
	// slot layout and releasing every block — which bounds resident
	// memory at O(live tasks).
	arenaCur  [][]float64
	arenaOff  []int64
	arenaOld  [][][]float64
	arenaDead []int64

	// Round bookkeeping shared across phases: shardBase[s] is the global
	// move index of shard s's first move, crossAt the 0-based global
	// index of the move whose counter increment fires the last periodic
	// weight recompute this round (-1: none), freshSum the per-node
	// array sums at that instant. sumValid[i] memoizes freshSum[i]: it
	// is true while node i's task array is unchanged since freshSum[i]
	// was folded from it, in which case a later recompute firing can
	// reuse the stored sum instead of re-folding an identical array —
	// sumFloats is a pure function of the array contents, so the reuse
	// is bit-exact.
	shardBase []int64
	crossAt   int64
	freshSum  []float64
	sumValid  []bool

	scratch []*weightedScratch
	workers int
	kick    []chan phase
	wg      sync.WaitGroup
	closed  bool
	times   PhaseTimes

	// flowsCross counts the cross-shard flow records produced by decide
	// phases so far (telemetry; read via CrossFlows).
	flowsCross int64
}

// weightedScratch is one worker's reusable decide storage.
type weightedScratch struct {
	ws    *core.WeightedScratch
	child rng.Stream
}

// NewWeighted validates the instance, copies the per-node weight
// multisets into the flat shard pools, partitions the CSR view and
// starts the worker pool. The initial cached weight sums are computed
// with the exact operation order of core.NewWeightedState, so the
// engine starts bit-identical to a freshly built sequential state.
func NewWeighted(sys *core.System, proto core.WeightedFlatProtocol, perNode []task.Weights, opts Options) (*WeightedEngine, error) {
	if sys == nil {
		return nil, errors.New("shard: nil system")
	}
	if proto == nil {
		return nil, errors.New("shard: nil protocol")
	}
	n := sys.N()
	if len(perNode) != n {
		return nil, fmt.Errorf("shard: %d nodes of tasks for %d processors", len(perNode), n)
	}
	for i, ws := range perNode {
		if err := ws.Validate(); err != nil {
			return nil, fmt.Errorf("shard: node %d: %w", i, err)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = workers
	}
	csr := sys.Graph().CSR()
	part, err := NewPartition(csr, shards, opts.Strategy)
	if err != nil {
		return nil, err
	}
	p := part.P()
	if workers > p {
		workers = p
	}
	e := &WeightedEngine{
		sys:        sys,
		csr:        csr,
		proto:      proto,
		part:       part,
		pool:       make([][]float64, p),
		spare:      make([][]float64, p),
		off:        make([][]int64, p),
		noff:       make([][]int64, p),
		segLen:     make([][]int64, p),
		priv:       make([][][]float64, p),
		nodeWeight: make([]float64, n),
		loads:      make([]float64, n),
		outFlows:   make([][][]transport.WFlow, p),
		remIdx:     make([][]int32, p),
		remPos:     make([][]int64, p),
		moves:      make([]int64, p),
		tr:         newMemTransport(p),
		arrCnt:     make([][]int32, p),
		arrFill:    make([][]int32, p),
		arrPos:     make([][]int64, p),
		arrW:       make([][]float64, p),
		arrG:       make([][]int64, p),
		arenaCur:   make([][]float64, p),
		arenaOff:   make([]int64, p),
		arenaOld:   make([][][]float64, p),
		arenaDead:  make([]int64, p),
		shardBase:  make([]int64, p),
		crossAt:    -1,
		freshSum:   make([]float64, n),
		sumValid:   make([]bool, n),
		scratch:    make([]*weightedScratch, workers),
		workers:    workers,
		kick:       make([]chan phase, workers),
	}
	e.view = DenseLoadView(e.loads)
	for s := 0; s < p; s++ {
		lo, hi := part.Range(s)
		size := hi - lo
		total := 0
		for i := lo; i < hi; i++ {
			total += len(perNode[i])
		}
		pool := make([]float64, 0, total)
		off := make([]int64, size+1)
		segLen := make([]int64, size)
		for i := lo; i < hi; i++ {
			pool = append(pool, perNode[i]...)
			off[i-lo+1] = int64(len(pool))
			segLen[i-lo] = int64(len(perNode[i]))
		}
		e.pool[s] = pool
		e.off[s] = off
		e.noff[s] = make([]int64, size+1)
		e.segLen[s] = segLen
		e.priv[s] = make([][]float64, size)
		e.outFlows[s] = make([][]transport.WFlow, p)
		// Unlike the uniform engine's per-edge flow entries, weighted
		// flows are per task, so edge counts are a warm-start heuristic
		// rather than a hard bound — but the dominant list is the
		// intra-shard one (outFlows[s][s], which CrossEdges excludes by
		// definition), so presize it from the shard's internal directed
		// edge count and let heavy rounds grow amortized from there.
		intra := 0
		for i := lo; i < hi; i++ {
			intra += csr.Degree(i)
		}
		for d := 0; d < p; d++ {
			if d != s {
				intra -= part.CrossEdges(s, d)
			}
		}
		for d := 0; d < p; d++ {
			c := part.CrossEdges(s, d)
			if d == s {
				c = intra
			}
			if c > 0 {
				e.outFlows[s][d] = make([]transport.WFlow, 0, c)
			}
		}
		e.remPos[s] = make([]int64, size+1)
		e.arrCnt[s] = make([]int32, size)
		e.arrFill[s] = make([]int32, size)
		e.arrPos[s] = make([]int64, size+1)
	}
	// Cached weight sums with NewWeightedState's exact operation order:
	// nodeWeight[i] = Σ (ascending), then totalW += nodeWeight[i],
	// i ascending.
	for i := 0; i < n; i++ {
		w := perNode[i].Total()
		e.nodeWeight[i] = w
		e.totalW += w
		e.count += int64(len(perNode[i]))
	}
	maxDeg := csr.MaxDegree()
	for w := 0; w < workers; w++ {
		e.scratch[w] = &weightedScratch{
			ws: core.NewWeightedScratch(maxDeg),
		}
		e.kick[w] = make(chan phase)
		go func(w int) {
			for ph := range e.kick[w] {
				e.runPhase(w, ph)
				e.wg.Done()
			}
		}(w)
	}
	return e, nil
}

// dispatch runs one phase on every worker and blocks at the barrier.
// Callers hold e.mu.
func (e *WeightedEngine) dispatch(ph phase) {
	e.wg.Add(e.workers)
	for _, ch := range e.kick {
		ch <- ph
	}
	e.wg.Wait()
}

// runPhase executes a phase for every shard striped onto worker w.
func (e *WeightedEngine) runPhase(w int, ph phase) {
	for s := w; s < e.part.P(); s += e.workers {
		switch ph.kind {
		case phaseLoads:
			e.snapshotLoads(s)
		case phaseDecide:
			e.decideShard(s, ph.round, e.scratch[w])
			e.tr.PublishWFlows(s, e.outFlows[s])
		case phaseCommit:
			e.commitShard(s)
		}
	}
}

// snapshotLoads refreshes shard s's slice of the round-start load
// snapshot; the division matches WeightedState.Load exactly.
func (e *WeightedEngine) snapshotLoads(s int) {
	lo, hi := e.part.Range(s)
	for i := lo; i < hi; i++ {
		e.loads[i] = e.nodeWeight[i] / e.sys.Speed(i)
	}
}

// decideShard evaluates shard s's protocol decisions against the
// round-start snapshot. Each node's moves arrive sorted by task index
// descending (the WeightedFlatProtocol contract and core.ApplyMoves
// application order) and are recorded twice: the removal
// indices land in the shard's flat removal list, and each move emits a
// flow entry — carrying the task's round-start weight and the move's
// position within the node's list — into the per-destination-shard flow
// buffer. Only shard-s buffers are written.
func (e *WeightedEngine) decideShard(s int, roundStream *rng.Stream, sc *weightedScratch) {
	part := e.part
	lo, hi := part.Range(s)
	flows := e.outFlows[s]
	for d := range flows {
		// Presize from last round's volume before truncating: growing via
		// append would memmove the (dead) old contents on every
		// reallocation, so when the buffer looks too tight replace it with
		// a fresh empty one instead — allocation without the copy. Caps
		// are monotone (at least doubling), so a run performs O(log peak)
		// allocations total and the steady state allocates nothing;
		// underestimates just fall back to append's normal growth.
		if prev := len(flows[d]); cap(flows[d]) < prev+prev/8 {
			flows[d] = make([]transport.WFlow, 0, max(prev+prev/2, 2*cap(flows[d])))
		} else {
			flows[d] = flows[d][:0]
		}
	}
	remIdx := e.remIdx[s]
	if prev := len(remIdx); cap(remIdx) < prev+prev/8 {
		remIdx = make([]int32, 0, max(prev+prev/2, 2*cap(remIdx)))
	} else {
		remIdx = remIdx[:0]
	}
	remPos := e.remPos[s]
	remPos[0] = 0
	segLen := e.segLen[s]
	mv := int64(0)
	for i := lo; i < hi; i++ {
		k := i - lo
		cnt := int(segLen[k])
		var ms []core.TaskMove
		if cnt > 0 {
			roundStream.SplitTo(uint64(i), &sc.child)
			ms = e.proto.DecideNodeFlat(e.sys, i, cnt, e.nodeWeight[i], e.view.Dense(), &sc.child, sc.ws)
		}
		if len(ms) > 0 {
			seg := e.seg(s, k)
			for p, m := range ms {
				remIdx = append(remIdx, int32(m.Idx))
				d := int(part.shardOf[m.To])
				// G = mv + p is the move's shard-local index: the count
				// of moves this shard emitted before it this round.
				flows[d] = append(flows[d], transport.WFlow{Dst: int32(m.To), G: mv + int64(p), W: seg[m.Idx]})
			}
			mv += int64(len(ms))
		}
		remPos[k+1] = remPos[k] + int64(len(ms))
	}
	e.remIdx[s] = remIdx
	e.moves[s] = mv
}

// seg returns the current task segment of node lo+k of shard s: its
// private slice if it has been privatized, its pool slot prefix
// otherwise.
func (e *WeightedEngine) seg(s, k int) []float64 {
	if pv := e.priv[s][k]; pv != nil {
		return pv[:e.segLen[s][k]]
	}
	o := e.off[s]
	return e.pool[s][o[k] : o[k]+e.segLen[s][k]]
}

// commitShard applies every move addressed to shard d against the flat
// pool, node by node, replaying the sequential engine's exact operation
// sequence. The global move timeline orders all moves as ApplyMoves
// does — source nodes ascending, indices descending within a source —
// and each node's operations (task arrivals from other nodes, its own
// swap-delete removals) are merged by their position on that timeline,
// which reproduces the interleaving the sequential loop would produce:
// arrivals from lower-numbered sources land before the node's own
// removals and can be swapped into freed slots, exactly as in moveTask.
// The replay runs in place on each touched node's own segment —
// untouched nodes are not even read — so commit work is proportional to
// the round's operations, not to the shard's task count. Shard d's
// segments and weight-sum entries are written only here, only by the
// worker running d, after the decide barrier.
func (e *WeightedEngine) commitShard(d int) {
	part := e.part
	lo, hi := part.Range(d)
	size := hi - lo
	e.maybeCompact(d)
	// Pass 1: count arrivals per destination node.
	arrCnt := e.arrCnt[d]
	for k := range arrCnt {
		arrCnt[k] = 0
	}
	totalArr := int64(0)
	for src := 0; src < part.P(); src++ {
		for _, f := range e.tr.WFlows(src, d) {
			arrCnt[int(f.Dst)-lo]++
			totalArr++
		}
	}
	remPos := e.remPos[d]
	if totalArr == 0 && remPos[size] == 0 {
		// Quiet shard: no tasks leave it or enter it. Without a weight
		// recompute there is nothing to do; with one, only the cached
		// sums must be refreshed — from the memoized fold when the array
		// is unchanged since it was last summed.
		if e.crossAt >= 0 {
			for k := 0; k < size; k++ {
				e.refreshSum(d, k, lo+k)
			}
		}
		return
	}
	// Pass 2: bucket the arrivals per destination node, walking the
	// source shards in ascending order — shards are contiguous index
	// ranges and each flow list is source-ascending, so every bucket
	// ends up in global source order. Each entry records its global move
	// index g for the timeline merge below.
	arrPos := e.arrPos[d]
	arrPos[0] = 0
	for k := 0; k < size; k++ {
		arrPos[k+1] = arrPos[k] + int64(arrCnt[k])
	}
	arrW := growFloats(e.arrW[d], totalArr)
	arrG := growInt64s(e.arrG[d], totalArr)
	e.arrW[d], e.arrG[d] = arrW, arrG
	fill := e.arrFill[d]
	for k := range fill {
		fill[k] = 0
	}
	for src := 0; src < part.P(); src++ {
		base := e.shardBase[src]
		for _, f := range e.tr.WFlows(src, d) {
			k := int(f.Dst) - lo
			at := arrPos[k] + int64(fill[k])
			fill[k]++
			arrW[at] = f.W
			arrG[at] = base + f.G
		}
	}
	// Pass 3: per-node in-place replay; nodes without operations are
	// touched only when a recompute firing needs their fresh sums.
	gbase := e.shardBase[d]
	remIdxAll := e.remIdx[d]
	for k := 0; k < size; k++ {
		aw := arrW[arrPos[k]:arrPos[k+1]]
		ag := arrG[arrPos[k]:arrPos[k+1]]
		rem := remIdxAll[remPos[k]:remPos[k+1]]
		if len(aw) == 0 && len(rem) == 0 {
			if e.crossAt >= 0 {
				e.refreshSum(d, k, lo+k)
			}
			continue
		}
		e.replayNode(d, k, lo+k, aw, ag, rem, gbase+remPos[k])
	}
}

// arenaMinBlock is the smallest bump block the privatization arena
// allocates; blocks double from here, so a shard whose privatized
// working set peaks at W floats allocates O(log(W/arenaMinBlock))
// blocks over its lifetime.
const arenaMinBlock = 4096

// carve returns a zero-length slice with exactly capNeeded capacity
// from shard s's bump arena, allocating a new (doubled) block only
// when the current one cannot fit the request. The three-index
// expression pins the capacity so a later append cannot bleed into the
// next carve.
func (e *WeightedEngine) carve(s int, capNeeded int64) []float64 {
	blk := e.arenaCur[s]
	if int64(len(blk))-e.arenaOff[s] < capNeeded {
		if blk != nil {
			e.arenaOld[s] = append(e.arenaOld[s], blk)
			e.arenaDead[s] += int64(len(blk)) - e.arenaOff[s]
		}
		size := max(2*int64(len(blk)), capNeeded, arenaMinBlock)
		blk = make([]float64, size)
		e.arenaCur[s] = blk
		e.arenaOff[s] = 0
	}
	off := e.arenaOff[s]
	e.arenaOff[s] += capNeeded
	return blk[off : off : off+capNeeded]
}

// resetArena releases shard s's arena blocks; the caller must have
// repointed (or be about to rebuild) every private segment first.
func (e *WeightedEngine) resetArena(s int) {
	e.arenaCur[s] = nil
	e.arenaOff[s] = 0
	e.arenaOld[s] = nil
	e.arenaDead[s] = 0
}

// maybeCompact bounds the arena's dead space: once the floats carved
// and abandoned exceed the shard's packed pool size (or a fixed floor
// for small shards), the shard is rebuilt into a fresh packed slot
// layout — each node's segment copied verbatim, so contents, memoized
// folds and the trajectory are untouched — and the arena is released.
// Runs at the top of commitShard, before the round's replay carves.
func (e *WeightedEngine) maybeCompact(s int) {
	if e.arenaDead[s] <= max(int64(len(e.pool[s])), 4*arenaMinBlock) {
		return
	}
	lo, hi := e.part.Range(s)
	size := hi - lo
	segLen, noff := e.segLen[s], e.noff[s]
	noff[0] = 0
	for k := 0; k < size; k++ {
		noff[k+1] = noff[k] + segLen[k]
	}
	spare := growFloats(e.spare[s], noff[size])
	for k := 0; k < size; k++ {
		copy(spare[noff[k]:noff[k+1]], e.seg(s, k))
	}
	e.pool[s], e.spare[s] = spare, e.pool[s][:0]
	e.off[s], e.noff[s] = e.noff[s], e.off[s]
	for k := 0; k < size; k++ {
		e.priv[s][k] = nil
	}
	e.resetArena(s)
}

// refreshSum is the periodic-recompute refresh for a node with no
// operations this round: fold its segment — or reuse the memoized fold
// when the array is unchanged since freshSum was computed — and adopt
// the fresh value as the cached weight sum, exactly as the sequential
// RecomputeWeights would.
func (e *WeightedEngine) refreshSum(d, k, i int) {
	if !e.sumValid[i] {
		e.freshSum[i] = sumFloats(e.seg(d, k))
		e.sumValid[i] = true
	}
	e.nodeWeight[i] = e.freshSum[i]
}

// replayNode replays node i's slice of the round's move sequence: a
// two-way merge of its incoming tasks (aw/ag, in global source order)
// and its own removals (rem, idx-descending, occupying the contiguous
// global index range starting at remG0), ordered by global move index.
// Appends and swap-deletes run in place on the node's own segment —
// literally the moveTask operations — and the cached weight sum
// receives the identical sequence of float64 additions and subtractions
// the sequential engine would apply. The segment needs capacity for the
// transient peak length (every arrival can precede every removal); a
// pool-resident node that outgrows its slot is privatized first, with
// headroom so subsequent growth stays amortized O(1) per task. If the
// periodic weight recompute fires this round (crossAt ≥ 0), the sum is
// rebuilt from the array contents at exactly that instant, and the
// remaining operations continue incrementally from the fresh value.
func (e *WeightedEngine) replayNode(d, k, i int, aw []float64, ag []int64, rem []int32, remG0 int64) {
	segLen := e.segLen[d]
	cur := segLen[k]
	peak := cur + int64(len(aw))
	var seg []float64
	if pv := e.priv[d][k]; pv != nil {
		if int64(cap(pv)) < peak {
			np := e.carve(d, growCap(peak))[:cur]
			copy(np, pv[:cur])
			e.arenaDead[d] += int64(cap(pv))
			seg = np
		} else {
			seg = pv[:cur]
		}
	} else {
		o := e.off[d]
		if o[k+1]-o[k] < peak {
			np := e.carve(d, growCap(peak))[:cur]
			copy(np, e.pool[d][o[k]:o[k]+cur])
			e.priv[d][k] = np
			seg = np
		} else {
			seg = e.pool[d][o[k] : o[k]+cur : o[k+1]]
		}
	}
	nw := e.nodeWeight[i]
	cross := e.crossAt
	crossed := cross < 0
	// On non-recompute rounds (the common case) one-sided nodes skip the
	// merge machinery: the corner source is removals-only and the
	// spreading frontier's leading edge is arrivals-only, so these tight
	// loops carry most of a corner-start round's operations. The float64
	// operation sequence on nw is identical to the general merge.
	if crossed && len(aw) == 0 {
		for _, idx := range rem {
			last := len(seg) - 1
			w := seg[idx]
			seg[idx] = seg[last]
			seg = seg[:last]
			nw -= w
		}
		e.finishReplay(d, k, i, seg, nw)
		return
	}
	if crossed && len(rem) == 0 {
		seg = append(seg, aw...)
		for _, w := range aw {
			nw += w
		}
		e.finishReplay(d, k, i, seg, nw)
		return
	}
	ai, ri := 0, 0
	for ai < len(aw) || ri < len(rem) {
		var g int64
		takeArr := ri >= len(rem)
		if !takeArr && ai < len(aw) {
			takeArr = ag[ai] < remG0+int64(ri)
		}
		if takeArr {
			g = ag[ai]
		} else {
			g = remG0 + int64(ri)
		}
		if !crossed && g > cross {
			nw = sumFloats(seg)
			e.freshSum[i] = nw
			crossed = true
		}
		if takeArr {
			seg = append(seg, aw[ai])
			nw += aw[ai]
			ai++
		} else {
			idx := rem[ri]
			last := len(seg) - 1
			w := seg[idx]
			seg[idx] = seg[last]
			seg = seg[:last]
			nw -= w
			ri++
		}
	}
	// The array changed, so any memoized fold is stale — unless the
	// recompute fired after the last operation, in which case freshSum
	// holds the fold of exactly the final contents.
	e.sumValid[i] = false
	if !crossed {
		nw = sumFloats(seg)
		e.freshSum[i] = nw
		e.sumValid[i] = true
	}
	e.nodeWeight[i] = nw
	segLen[k] = int64(len(seg))
	if e.priv[d][k] != nil {
		e.priv[d][k] = seg
	}
}

// finishReplay stores a replayed node's updated segment, length, and
// cached weight sum; the memoized fold is stale because the array
// changed with no recompute firing after the final operation.
func (e *WeightedEngine) finishReplay(d, k, i int, seg []float64, nw float64) {
	e.sumValid[i] = false
	e.nodeWeight[i] = nw
	e.segLen[d][k] = int64(len(seg))
	if e.priv[d][k] != nil {
		e.priv[d][k] = seg
	}
}

// growCap sizes a privatized segment: the transient peak plus headroom
// so a node growing across consecutive rounds reallocates O(log growth)
// times.
func growCap(peak int64) int64 {
	return peak + peak/2 + 8
}

// sumFloats folds left to right — the summation order of
// WeightedState.RecomputeWeights over one node's task array.
func sumFloats(v []float64) float64 {
	w := 0.0
	for _, x := range v {
		w += x
	}
	return w
}

// WeightedEngine is driven through the shared core.Drive loop.
var _ core.Engine[*core.WeightedState] = (*WeightedEngine)(nil)
var _ core.DynamicEngine = (*WeightedEngine)(nil)

// Step implements core.Engine: one synchronous round r drawing
// randomness from base under the At(r, i) contract.
func (e *WeightedEngine) Step(r uint64, base *rng.Stream) (int64, error) {
	if base == nil {
		return 0, errors.New("shard: nil base stream")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	t0 := time.Now()
	e.dispatch(phase{kind: phaseLoads})
	t1 := time.Now()
	e.dispatch(phase{kind: phaseDecide, round: base.Split(r)})
	// Telemetry only: tally this round's cross-shard flow records.
	// Integer length reads after the decide barrier — no effect on the
	// trajectory.
	for s := range e.outFlows {
		for d, l := range e.outFlows[s] {
			if d != s {
				e.flowsCross += int64(len(l))
			}
		}
	}
	// Serial inter-barrier bookkeeping: lay the shards' moves onto the
	// round's global move timeline (sources ascending — shards are
	// contiguous ascending index ranges).
	total := int64(0)
	for s, m := range e.moves {
		e.shardBase[s] = total
		total += m
	}
	// Does the sequential engine's periodic weight recompute fire this
	// round? moveTask increments its counter once per move and rebuilds
	// the cached sums on reaching the threshold. The rebuild reads only
	// the task arrays — whose evolution is independent of the cache — so
	// only the LAST firing is observable in the post-round state: the
	// commit replays layouts as usual and refreshes the sums at that
	// single instant.
	e.crossAt = -1
	every := int64(core.WeightRecomputeEvery)
	if e.sinceRecompute+total >= every {
		first := every - e.sinceRecompute
		firings := 1 + (total-first)/every
		last := first + (firings-1)*every
		e.crossAt = last - 1
		e.sinceRecompute = total - last
	} else {
		e.sinceRecompute += total
	}
	t2 := time.Now()
	e.dispatch(phase{kind: phaseCommit})
	if e.crossAt >= 0 {
		// RecomputeWeights folds the total in node order.
		t := 0.0
		for _, w := range e.freshSum {
			t += w
		}
		e.totalW = t
	}
	t3 := time.Now()
	e.times.Snapshot += t1.Sub(t0)
	e.times.Decide += t2.Sub(t1)
	e.times.Commit += t3.Sub(t2)
	e.times.Rounds++
	return total, nil
}

// Phases implements PhaseTimer: cumulative per-phase wall-clock time
// across every Step so far. The serial recompute-crossing bookkeeping
// counts toward decide and the post-barrier total-weight fold toward
// commit.
func (e *WeightedEngine) Phases() PhaseTimes {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.times
}

// CrossFlows returns the cumulative number of cross-shard flow records
// the decide phases have produced — the engine's inter-shard traffic
// volume, the in-process analogue of the cluster's wire flows.
func (e *WeightedEngine) CrossFlows() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flowsCross
}

// ArenaStats reports the privatization arena's occupancy: the bytes in
// the active bump blocks, the bytes in retired blocks that live
// segments still reference, and the float64 slots stranded dead inside
// them. A RetiredBytes share that keeps growing across event batches
// signals segment churn outpacing the compaction heuristic.
type ArenaStats struct {
	CurBytes     int64 `json:"curBytes"`
	RetiredBytes int64 `json:"retiredBytes"`
	DeadFloats   int64 `json:"deadFloats"`
}

// Arena snapshots the privatization arena occupancy across all shards.
func (e *WeightedEngine) Arena() ArenaStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st ArenaStats
	for s := range e.arenaCur {
		st.CurBytes += int64(len(e.arenaCur[s])) * 8
		for _, blk := range e.arenaOld[s] {
			st.RetiredBytes += int64(len(blk)) * 8
		}
		st.DeadFloats += e.arenaDead[s]
	}
	return st
}

// ApplyEvents implements core.DynamicEngine: pre-round weighted
// workload mutation with WeightedState.ApplyEvents semantics — arrivals
// injected first (nodes ascending), then departures drained most-recent
// first, clamped to the queue — and with its exact floating-point
// bookkeeping order, so ledgers and trajectories stay bit-identical.
// Unlike the sequential mutator, validation happens up front: an
// invalid batch returns an error with no partial application.
func (e *WeightedEngine) ApplyEvents(batch *core.EventBatch) (core.EventLedger, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return core.EventLedger{}, ErrClosed
	}
	var led core.EventLedger
	if batch == nil {
		return led, nil
	}
	n := e.csr.N()
	if len(batch.WeightArrivals) != 0 && len(batch.WeightArrivals) != n {
		return led, fmt.Errorf("core: %d weight-arrival entries for %d nodes", len(batch.WeightArrivals), n)
	}
	if len(batch.WeightDepartures) != 0 && len(batch.WeightDepartures) != n {
		return led, fmt.Errorf("core: %d weight-departure entries for %d nodes", len(batch.WeightDepartures), n)
	}
	events := int64(0)
	for i, ws := range batch.WeightArrivals {
		if err := task.Weights(ws).Validate(); err != nil {
			return led, fmt.Errorf("node %d: %w", i, err)
		}
		events += int64(len(ws))
	}
	for i, d := range batch.WeightDepartures {
		if d < 0 {
			return led, fmt.Errorf("core: negative weight departure %d at node %d", d, i)
		}
		events += e.drainCount(i, batch)
	}
	if e.sinceRecompute+events >= int64(core.WeightRecomputeEvery) {
		return e.slowApplyEvents(batch)
	}
	// Fast path (no recompute fires): two global passes mirror the
	// sequential loops — all injections (nodes ascending), then all
	// drains — so the shared totalW and ledger accumulators receive
	// their float64 operations in the identical global order; the
	// per-node weight sums see only their own operations, whose order
	// the per-node grouping preserves.
	for i, ws := range batch.WeightArrivals {
		if len(ws) == 0 {
			continue
		}
		for _, w := range ws {
			e.nodeWeight[i] += w
			e.totalW += w
		}
		e.count += int64(len(ws))
		e.sumValid[i] = false
		led.ArrivedTasks += int64(len(ws))
		for _, w := range ws {
			led.ArrivedWeight += w
		}
	}
	for i, d := range batch.WeightDepartures {
		k := e.drainCount(i, batch)
		if d <= 0 || k <= 0 {
			continue
		}
		e.sumValid[i] = false
		oldCnt := e.nodeCount(i)
		var arr []float64
		if len(batch.WeightArrivals) != 0 {
			arr = batch.WeightArrivals[i]
		}
		cut := oldCnt + int64(len(arr)) - k
		seg := e.nodeSegment(i)
		t := 0.0
		for p := cut; p < oldCnt+int64(len(arr)); p++ {
			var w float64
			if p < oldCnt {
				w = seg[p]
			} else {
				w = arr[p-oldCnt]
			}
			e.nodeWeight[i] -= w
			e.totalW -= w
			t += w
		}
		e.count -= k
		led.DepartedTasks += k
		led.DepartedWeight += t
	}
	e.sinceRecompute += events
	e.rebuildAfterEvents(batch)
	return led, nil
}

// drainCount returns the number of tasks a departure request at node i
// actually removes: the request clamped to the queue after arrivals,
// exactly as WeightedState.Drain clamps it.
func (e *WeightedEngine) drainCount(i int, batch *core.EventBatch) int64 {
	if len(batch.WeightDepartures) == 0 {
		return 0
	}
	d := batch.WeightDepartures[i]
	if d <= 0 {
		return 0
	}
	have := e.nodeCount(i)
	if len(batch.WeightArrivals) != 0 {
		have += int64(len(batch.WeightArrivals[i]))
	}
	if d > have {
		d = have
	}
	return d
}

// nodeCount returns |x(i)| from the flat segment lengths.
func (e *WeightedEngine) nodeCount(i int) int64 {
	s := int(e.part.shardOf[i])
	lo, _ := e.part.Range(s)
	return e.segLen[s][i-lo]
}

// nodeSegment returns node i's current task segment (read-only view).
func (e *WeightedEngine) nodeSegment(i int) []float64 {
	s := int(e.part.shardOf[i])
	lo, _ := e.part.Range(s)
	return e.seg(s, i-lo)
}

// rebuildAfterEvents rewrites the pools of every shard touched by the
// batch: each node keeps (old ++ arrivals) truncated by its applied
// drain — the layout Inject-then-Drain produces. A touched shard is
// compacted into a packed pool and its private segments are released;
// untouched shards keep their layout. A node's content survives the
// compaction verbatim, so its memoized fold stays valid; nodes with
// arrivals or drains have theirs invalidated by the caller.
func (e *WeightedEngine) rebuildAfterEvents(batch *core.EventBatch) {
	for s := 0; s < e.part.P(); s++ {
		lo, hi := e.part.Range(s)
		touched := false
		for i := lo; i < hi && !touched; i++ {
			if len(batch.WeightArrivals) != 0 && len(batch.WeightArrivals[i]) > 0 {
				touched = true
			}
			if e.drainCount(i, batch) > 0 {
				touched = true
			}
		}
		if !touched {
			continue
		}
		segLen, noff := e.segLen[s], e.noff[s]
		noff[0] = 0
		for i := lo; i < hi; i++ {
			k := i - lo
			a := int64(0)
			if len(batch.WeightArrivals) != 0 {
				a = int64(len(batch.WeightArrivals[i]))
			}
			noff[k+1] = noff[k] + segLen[k] + a - e.drainCount(i, batch)
		}
		spare := growFloats(e.spare[s], noff[hi-lo])
		for i := lo; i < hi; i++ {
			k := i - lo
			newSeg := spare[noff[k]:noff[k+1]]
			kept := copy(newSeg, e.seg(s, k))
			if len(batch.WeightArrivals) != 0 {
				copy(newSeg[kept:], batch.WeightArrivals[i])
			}
		}
		e.pool[s], e.spare[s] = spare, e.pool[s][:0]
		e.off[s], e.noff[s] = e.noff[s], e.off[s]
		off := e.off[s]
		for k := 0; k < hi-lo; k++ {
			segLen[k] = off[k+1] - off[k]
			e.priv[s][k] = nil
		}
		e.resetArena(s)
	}
}

// slowApplyEvents is the exact-replication path for the rare batch
// whose update count crosses the periodic recompute threshold: it
// materializes the per-node arrays and runs the literal sequential
// mutator sequence — Inject, Drain, counter increments and the
// mid-batch RecomputeWeights firings — then re-flattens. Allocation is
// acceptable here: the threshold admits this path at most once per
// 2²⁰ events.
func (e *WeightedEngine) slowApplyEvents(batch *core.EventBatch) (core.EventLedger, error) {
	var led core.EventLedger
	n := e.csr.N()
	tasks := make([][]float64, n)
	for i := 0; i < n; i++ {
		tasks[i] = append([]float64(nil), e.nodeSegment(i)...)
	}
	recompute := func() {
		total := 0.0
		for i, ts := range tasks {
			w := sumFloats(ts)
			e.nodeWeight[i] = w
			total += w
		}
		e.totalW = total
		e.sinceRecompute = 0
	}
	for i, ws := range batch.WeightArrivals {
		if len(ws) == 0 {
			continue
		}
		for _, w := range ws {
			tasks[i] = append(tasks[i], w)
			e.nodeWeight[i] += w
			e.totalW += w
		}
		e.count += int64(len(ws))
		e.sinceRecompute += int64(len(ws))
		if e.sinceRecompute >= int64(core.WeightRecomputeEvery) {
			recompute()
		}
		led.ArrivedTasks += int64(len(ws))
		for _, w := range ws {
			led.ArrivedWeight += w
		}
	}
	for i, d := range batch.WeightDepartures {
		k := int(d)
		if k <= 0 {
			continue
		}
		if k > len(tasks[i]) {
			k = len(tasks[i])
		}
		if k == 0 {
			continue
		}
		cut := len(tasks[i]) - k
		removed := tasks[i][cut:]
		tasks[i] = tasks[i][:cut]
		for _, w := range removed {
			e.nodeWeight[i] -= w
			e.totalW -= w
		}
		e.count -= int64(k)
		e.sinceRecompute += int64(k)
		if e.sinceRecompute >= int64(core.WeightRecomputeEvery) {
			recompute()
		}
		led.DepartedTasks += int64(k)
		led.DepartedWeight += sumFloats(removed)
	}
	for s := 0; s < e.part.P(); s++ {
		lo, hi := e.part.Range(s)
		off := e.off[s]
		segLen := e.segLen[s]
		total := int64(0)
		for i := lo; i < hi; i++ {
			off[i-lo+1] = total + int64(len(tasks[i]))
			total = off[i-lo+1]
			segLen[i-lo] = int64(len(tasks[i]))
		}
		pool := growFloats(e.pool[s], total)
		for i := lo; i < hi; i++ {
			copy(pool[off[i-lo]:off[i-lo+1]], tasks[i])
			e.priv[s][i-lo] = nil
			e.sumValid[i] = false
		}
		e.pool[s] = pool
		e.resetArena(s)
	}
	return led, nil
}

// State implements core.Engine by materializing the flat pools as a
// core.WeightedState: the task layout is copied verbatim and the cached
// weight sums are adopted bit-for-bit (NewWeightedStateFromFlat), so
// the state's loads and potentials equal the sequential engine's
// exactly.
func (e *WeightedEngine) State() (*core.WeightedState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	n := e.csr.N()
	pool := make([]float64, 0, e.count)
	off := make([]int64, n+1)
	for s := 0; s < e.part.P(); s++ {
		lo, hi := e.part.Range(s)
		for i := lo; i < hi; i++ {
			pool = append(pool, e.seg(s, i-lo)...)
			off[i+1] = int64(len(pool))
		}
	}
	return core.NewWeightedStateFromFlat(e.sys, pool, off, e.nodeWeight, e.totalW, int(e.sinceRecompute))
}

// NodeWeights returns a copy of the cached per-node weight sums Wᵢ.
func (e *WeightedEngine) NodeWeights() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.nodeWeight...)
}

// NodeLoad returns node i's current load ℓᵢ = Wᵢ/sᵢ from the cached
// weight sums — an O(1) read (WeightedState.Load semantics) that lets
// a live observer (the serve daemon's GET /load) answer per-node
// queries without materializing the full state.
func (e *WeightedEngine) NodeLoad(i int) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= e.csr.N() {
		return 0, fmt.Errorf("shard: load of node %d of %d", i, e.csr.N())
	}
	return e.nodeWeight[i] / e.sys.Speed(i), nil
}

// TaskCount returns the current number of tasks.
func (e *WeightedEngine) TaskCount() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Partition exposes the engine's partition (for stats and tests).
func (e *WeightedEngine) Partition() *Partition { return e.part }

// Workers returns the worker-pool size.
func (e *WeightedEngine) Workers() int { return e.workers }

// Footprint returns the engine's resident state in bytes: the CSR
// arrays, the task-weight pools and private segments, the offset and
// length arrays and every flat O(n) vector — the "bytes per node"
// numerator of the weighted scaling benchmark. The in-place commit
// keeps no ping-pong twin of the pool; spare is empty until an event
// batch forces a compaction.
func (e *WeightedEngine) Footprint() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	bytes := e.csr.Bytes()
	bytes += int64(len(e.nodeWeight)+len(e.loads)+len(e.freshSum)) * 8
	bytes += int64(len(e.part.shardOf))*4 + int64(len(e.sumValid))
	for s := range e.pool {
		bytes += int64(cap(e.pool[s])+cap(e.spare[s])) * 8
		bytes += int64(len(e.off[s])+len(e.noff[s])+len(e.segLen[s])+len(e.remPos[s])+len(e.arrPos[s])) * 8
		bytes += int64(cap(e.remIdx[s]))*4 + int64(len(e.arrCnt[s])+len(e.arrFill[s]))*4
		bytes += int64(cap(e.arrW[s]))*8 + int64(cap(e.arrG[s]))*8
		// Private segments are carved from the arena blocks, so the
		// blocks — not the per-node views — carry the resident bytes.
		bytes += int64(len(e.priv[s])) * 24
		bytes += int64(len(e.arenaCur[s])) * 8
		for _, blk := range e.arenaOld[s] {
			bytes += int64(len(blk)) * 8
		}
		for d := range e.outFlows[s] {
			bytes += int64(cap(e.outFlows[s][d])) * 24
		}
	}
	return bytes
}

// Close stops the worker pool. Idempotent; Step after Close returns
// ErrClosed.
func (e *WeightedEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for _, ch := range e.kick {
		close(ch)
	}
	return nil
}

// String describes the engine configuration.
func (e *WeightedEngine) String() string {
	return fmt.Sprintf("shard.WeightedEngine(n=%d, P=%d, workers=%d, %s)", e.csr.N(), e.part.P(), e.workers, e.part.Strategy())
}

// growFloats returns buf resized to n elements, reallocating — with at
// least doubled capacity, so a buffer oscillating around a slowly
// rising peak reallocates O(log peak) times, not once per round — only
// when the capacity is insufficient (contents are unspecified).
func growFloats(buf []float64, n int64) []float64 {
	if int64(cap(buf)) < n {
		return make([]float64, n, max(n, 2*int64(cap(buf))))
	}
	return buf[:n]
}

// growInt64s is growFloats for []int64.
func growInt64s(buf []int64, n int64) []int64 {
	if int64(cap(buf)) < n {
		return make([]int64, n, max(n, 2*int64(cap(buf))))
	}
	return buf[:n]
}
