package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/task"
)

// wflow is one migrating weighted task addressed to a node of the
// destination shard: the task's weight, its source node, and seq — the
// move's position within the source node's idx-descending move list,
// which dates the move on the round's global move timeline (see
// WeightedEngine.shardBase). Unlike the uniform engine's flow entries,
// which aggregate per cross edge, weighted flows are per task: the
// committer must append each weight individually, in the exact order
// the sequential ApplyMoves would.
type wflow struct {
	dst int32
	src int32
	seq int32
	w   float64
}

// WeightedEngine is the CSR-backed sharded execution engine for
// weighted tasks (Algorithm 2). State is a flat structure of arrays:
// shard s's task weights live in one contiguous pool with per-node
// offsets, and the cached per-node weight sums and the load snapshot
// are plain []float64 vectors — no per-node slice headers, no maps.
// Each round runs in the same three barrier-separated phases as the
// uniform Engine (snapshot loads, decide, commit) over P shards on a
// persistent worker pool.
//
// What makes the flat execution possible is the paper's own design
// decision: Algorithm 2's migration probability is independent of the
// moving task's weight, so the per-node decision needs only the task
// count, the cached node weight and the load snapshot
// (core.WeightedFlatProtocol), never the weight multiset. Tasks enter
// the picture only at commit, where the engine replays, per node, the
// exact operation sequence of the sequential core.ApplyMoves — same
// swap-deletes, same append order, same floating-point updates to the
// cached weight sums, same periodic weight recompute — so trajectories,
// traces and final task multisets are bit-identical to core.RunWeighted
// for any shard count, worker count and partition strategy.
//
// WeightedEngine implements core.Engine[*core.WeightedState] and
// core.DynamicEngine; public methods serialize on an internal mutex.
type WeightedEngine struct {
	sys   *core.System
	csr   *graph.CSR
	proto core.WeightedFlatProtocol
	part  *Partition

	mu sync.Mutex

	// Flat SoA state: node i of shard s owns
	// pool[s][off[s][i-lo] : off[s][i-lo+1]]. Commit rebuilds into the
	// spare pool and swaps (ping-pong), so the decide phase always reads
	// an immutable round-start layout.
	pool  [][]float64
	spare [][]float64
	off   [][]int64
	noff  [][]int64

	nodeWeight     []float64
	loads          []float64
	totalW         float64
	count          int64
	sinceRecompute int64

	// Decide outputs (indexed by shard, not worker, so the worker
	// striping cannot influence the trajectory).
	outFlows [][][]wflow // outFlows[s][d]: tasks moving from shard s into shard d (d == s included)
	remIdx   [][]int32   // shard s's removal indices: source-ascending, idx-descending
	remPos   [][]int64   // per-node prefix into remIdx (len shardSize+1)
	moves    []int64     // per-shard move totals

	// Commit scratch (indexed by destination shard): the arrival
	// buckets, filled in global source order.
	arrCnt  [][]int32
	arrFill [][]int32
	arrPos  [][]int64
	arrW    [][]float64
	arrG    [][]int64

	// Round bookkeeping shared across phases: shardBase[s] is the global
	// move index of shard s's first move, crossAt the 0-based global
	// index of the move whose counter increment fires the last periodic
	// weight recompute this round (-1: none), freshSum the per-node
	// array sums at that instant.
	shardBase []int64
	crossAt   int64
	freshSum  []float64

	scratch []*weightedScratch
	workers int
	kick    []chan phase
	wg      sync.WaitGroup
	closed  bool
}

// weightedScratch is one worker's reusable decide/commit storage.
type weightedScratch struct {
	ws    *core.WeightedScratch
	child rng.Stream
	buf   []float64 // per-node replay buffer
}

// NewWeighted validates the instance, copies the per-node weight
// multisets into the flat shard pools, partitions the CSR view and
// starts the worker pool. The initial cached weight sums are computed
// with the exact operation order of core.NewWeightedState, so the
// engine starts bit-identical to a freshly built sequential state.
func NewWeighted(sys *core.System, proto core.WeightedFlatProtocol, perNode []task.Weights, opts Options) (*WeightedEngine, error) {
	if sys == nil {
		return nil, errors.New("shard: nil system")
	}
	if proto == nil {
		return nil, errors.New("shard: nil protocol")
	}
	n := sys.N()
	if len(perNode) != n {
		return nil, fmt.Errorf("shard: %d nodes of tasks for %d processors", len(perNode), n)
	}
	for i, ws := range perNode {
		if err := ws.Validate(); err != nil {
			return nil, fmt.Errorf("shard: node %d: %w", i, err)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = workers
	}
	csr := sys.Graph().CSR()
	part, err := NewPartition(csr, shards, opts.Strategy)
	if err != nil {
		return nil, err
	}
	p := part.P()
	if workers > p {
		workers = p
	}
	e := &WeightedEngine{
		sys:        sys,
		csr:        csr,
		proto:      proto,
		part:       part,
		pool:       make([][]float64, p),
		spare:      make([][]float64, p),
		off:        make([][]int64, p),
		noff:       make([][]int64, p),
		nodeWeight: make([]float64, n),
		loads:      make([]float64, n),
		outFlows:   make([][][]wflow, p),
		remIdx:     make([][]int32, p),
		remPos:     make([][]int64, p),
		moves:      make([]int64, p),
		arrCnt:     make([][]int32, p),
		arrFill:    make([][]int32, p),
		arrPos:     make([][]int64, p),
		arrW:       make([][]float64, p),
		arrG:       make([][]int64, p),
		shardBase:  make([]int64, p),
		crossAt:    -1,
		freshSum:   make([]float64, n),
		scratch:    make([]*weightedScratch, workers),
		workers:    workers,
		kick:       make([]chan phase, workers),
	}
	maxCnt := 0
	for s := 0; s < p; s++ {
		lo, hi := part.Range(s)
		size := hi - lo
		total := 0
		for i := lo; i < hi; i++ {
			if c := len(perNode[i]); c > maxCnt {
				maxCnt = c
			}
			total += len(perNode[i])
		}
		pool := make([]float64, 0, total)
		off := make([]int64, size+1)
		for i := lo; i < hi; i++ {
			pool = append(pool, perNode[i]...)
			off[i-lo+1] = int64(len(pool))
		}
		e.pool[s] = pool
		e.spare[s] = make([]float64, 0, total)
		e.off[s] = off
		e.noff[s] = make([]int64, size+1)
		e.outFlows[s] = make([][]wflow, p)
		// Unlike the uniform engine's per-edge flow entries, weighted
		// flows are per task, so edge counts are a warm-start heuristic
		// rather than a hard bound — but the dominant list is the
		// intra-shard one (outFlows[s][s], which CrossEdges excludes by
		// definition), so presize it from the shard's internal directed
		// edge count and let heavy rounds grow amortized from there.
		intra := 0
		for i := lo; i < hi; i++ {
			intra += csr.Degree(i)
		}
		for d := 0; d < p; d++ {
			if d != s {
				intra -= part.CrossEdges(s, d)
			}
		}
		for d := 0; d < p; d++ {
			c := part.CrossEdges(s, d)
			if d == s {
				c = intra
			}
			if c > 0 {
				e.outFlows[s][d] = make([]wflow, 0, c)
			}
		}
		e.remPos[s] = make([]int64, size+1)
		e.arrCnt[s] = make([]int32, size)
		e.arrFill[s] = make([]int32, size)
		e.arrPos[s] = make([]int64, size+1)
	}
	// Cached weight sums with NewWeightedState's exact operation order:
	// nodeWeight[i] = Σ (ascending), then totalW += nodeWeight[i],
	// i ascending.
	for i := 0; i < n; i++ {
		w := perNode[i].Total()
		e.nodeWeight[i] = w
		e.totalW += w
		e.count += int64(len(perNode[i]))
	}
	maxDeg := csr.MaxDegree()
	for w := 0; w < workers; w++ {
		e.scratch[w] = &weightedScratch{
			ws:  core.NewWeightedScratch(maxDeg),
			buf: make([]float64, 0, maxCnt),
		}
		e.kick[w] = make(chan phase)
		go func(w int) {
			for ph := range e.kick[w] {
				e.runPhase(w, ph)
				e.wg.Done()
			}
		}(w)
	}
	return e, nil
}

// dispatch runs one phase on every worker and blocks at the barrier.
// Callers hold e.mu.
func (e *WeightedEngine) dispatch(ph phase) {
	e.wg.Add(e.workers)
	for _, ch := range e.kick {
		ch <- ph
	}
	e.wg.Wait()
}

// runPhase executes a phase for every shard striped onto worker w.
func (e *WeightedEngine) runPhase(w int, ph phase) {
	for s := w; s < e.part.P(); s += e.workers {
		switch ph.kind {
		case phaseLoads:
			e.snapshotLoads(s)
		case phaseDecide:
			e.decideShard(s, ph.round, e.scratch[w])
		case phaseCommit:
			e.commitShard(s, e.scratch[w])
		}
	}
}

// snapshotLoads refreshes shard s's slice of the round-start load
// snapshot; the division matches WeightedState.Load exactly.
func (e *WeightedEngine) snapshotLoads(s int) {
	lo, hi := e.part.Range(s)
	for i := lo; i < hi; i++ {
		e.loads[i] = e.nodeWeight[i] / e.sys.Speed(i)
	}
}

// decideShard evaluates shard s's protocol decisions against the
// round-start snapshot. Each node's moves are sorted by task index
// descending (the core.ApplyMoves application order) and then recorded
// twice: the removal indices land in the shard's flat removal list, and
// each move emits a flow entry — carrying the task's round-start weight
// and the move's position within the node's list — into the
// per-destination-shard flow buffer. Only shard-s buffers are written.
func (e *WeightedEngine) decideShard(s int, roundStream *rng.Stream, sc *weightedScratch) {
	part := e.part
	lo, hi := part.Range(s)
	flows := e.outFlows[s]
	for d := range flows {
		flows[d] = flows[d][:0]
	}
	remIdx := e.remIdx[s][:0]
	remPos := e.remPos[s]
	remPos[0] = 0
	off, pool := e.off[s], e.pool[s]
	mv := int64(0)
	for i := lo; i < hi; i++ {
		k := i - lo
		cnt := int(off[k+1] - off[k])
		var ms []core.TaskMove
		if cnt > 0 {
			roundStream.SplitTo(uint64(i), &sc.child)
			ms = e.proto.DecideNodeFlat(e.sys, i, cnt, e.nodeWeight[i], e.loads, &sc.child, sc.ws)
		}
		if len(ms) > 0 {
			core.SortMovesByIdxDesc(ms)
			seg := pool[off[k]:off[k+1]]
			for p, m := range ms {
				remIdx = append(remIdx, int32(m.Idx))
				d := int(part.shardOf[m.To])
				flows[d] = append(flows[d], wflow{dst: int32(m.To), src: int32(i), seq: int32(p), w: seg[m.Idx]})
			}
			mv += int64(len(ms))
		}
		remPos[k+1] = remPos[k] + int64(len(ms))
	}
	e.remIdx[s] = remIdx
	e.moves[s] = mv
}

// commitShard applies every move addressed to shard d against the flat
// pool, node by node, replaying the sequential engine's exact operation
// sequence. The global move timeline orders all moves as ApplyMoves
// does — source nodes ascending, indices descending within a source —
// and each node's operations (task arrivals from other nodes, its own
// swap-delete removals) are merged by their position on that timeline,
// which reproduces the interleaving the sequential loop would produce:
// arrivals from lower-numbered sources land before the node's own
// removals and can be swapped into freed slots, exactly as in moveTask.
// Shard d's pool, offsets and weight-sum entries are written only here,
// only by the worker running d, after the decide barrier.
func (e *WeightedEngine) commitShard(d int, sc *weightedScratch) {
	part := e.part
	lo, hi := part.Range(d)
	size := hi - lo
	// Pass 1: count arrivals per destination node.
	arrCnt := e.arrCnt[d]
	for k := range arrCnt {
		arrCnt[k] = 0
	}
	totalArr := int64(0)
	for src := 0; src < part.P(); src++ {
		for _, f := range e.outFlows[src][d] {
			arrCnt[int(f.dst)-lo]++
			totalArr++
		}
	}
	remPos := e.remPos[d]
	if totalArr == 0 && remPos[size] == 0 {
		// Quiet shard: no tasks leave it or enter it. Without a weight
		// recompute there is nothing to do; with one, only the cached
		// sums must be refreshed from the (unchanged) arrays.
		if e.crossAt >= 0 {
			off, pool := e.off[d], e.pool[d]
			for k := 0; k < size; k++ {
				w := 0.0
				for _, v := range pool[off[k]:off[k+1]] {
					w += v
				}
				e.freshSum[lo+k] = w
				e.nodeWeight[lo+k] = w
			}
		}
		return
	}
	// Pass 2: bucket the arrivals per destination node, walking the
	// source shards in ascending order — shards are contiguous index
	// ranges and each flow list is source-ascending, so every bucket
	// ends up in global source order. Each entry records its global move
	// index g for the timeline merge below.
	arrPos := e.arrPos[d]
	arrPos[0] = 0
	for k := 0; k < size; k++ {
		arrPos[k+1] = arrPos[k] + int64(arrCnt[k])
	}
	arrW := growFloats(e.arrW[d], totalArr)
	arrG := growInt64s(e.arrG[d], totalArr)
	e.arrW[d], e.arrG[d] = arrW, arrG
	fill := e.arrFill[d]
	for k := range fill {
		fill[k] = 0
	}
	for src := 0; src < part.P(); src++ {
		base := e.shardBase[src]
		rp := e.remPos[src]
		slo, _ := part.Range(src)
		for _, f := range e.outFlows[src][d] {
			k := int(f.dst) - lo
			at := arrPos[k] + int64(fill[k])
			fill[k]++
			arrW[at] = f.w
			arrG[at] = base + rp[int(f.src)-slo] + int64(f.seq)
		}
	}
	// Pass 3: new offsets, and a spare pool large enough for them.
	off, noff := e.off[d], e.noff[d]
	noff[0] = 0
	for k := 0; k < size; k++ {
		rem := remPos[k+1] - remPos[k]
		noff[k+1] = noff[k] + (off[k+1] - off[k]) - rem + int64(arrCnt[k])
	}
	spare := growFloats(e.spare[d], noff[size])
	e.spare[d] = spare
	// Pass 4: per-node replay into the spare pool.
	gbase := e.shardBase[d]
	pool := e.pool[d]
	for k := 0; k < size; k++ {
		oldSeg := pool[off[k]:off[k+1]]
		newSeg := spare[noff[k]:noff[k+1]]
		aw := arrW[arrPos[k]:arrPos[k+1]]
		ag := arrG[arrPos[k]:arrPos[k+1]]
		rem := e.remIdx[d][remPos[k]:remPos[k+1]]
		if len(aw) == 0 && len(rem) == 0 && e.crossAt < 0 {
			copy(newSeg, oldSeg)
			continue
		}
		e.replayNode(lo+k, oldSeg, newSeg, aw, ag, rem, gbase+remPos[k], sc)
	}
	// Ping-pong: the spare pool becomes current.
	e.pool[d], e.spare[d] = e.spare[d], e.pool[d]
	e.off[d], e.noff[d] = e.noff[d], e.off[d]
}

// replayNode replays node i's slice of the round's move sequence: a
// two-way merge of its incoming tasks (aw/ag, in global source order)
// and its own removals (rem, idx-descending, occupying the contiguous
// global index range starting at remG0), ordered by global move index.
// Appends and swap-deletes run against a scratch copy of the node's
// round-start segment — literally the moveTask operations — and the
// cached weight sum receives the identical sequence of float64
// additions and subtractions the sequential engine would apply. If the
// periodic weight recompute fires this round (crossAt ≥ 0), the sum is
// rebuilt from the array contents at exactly that instant, and the
// remaining operations continue incrementally from the fresh value.
func (e *WeightedEngine) replayNode(i int, oldSeg, newSeg, aw []float64, ag []int64, rem []int32, remG0 int64, sc *weightedScratch) {
	buf := append(sc.buf[:0], oldSeg...)
	nw := e.nodeWeight[i]
	cross := e.crossAt
	crossed := cross < 0
	ai, ri := 0, 0
	for ai < len(aw) || ri < len(rem) {
		var g int64
		takeArr := ri >= len(rem)
		if !takeArr && ai < len(aw) {
			takeArr = ag[ai] < remG0+int64(ri)
		}
		if takeArr {
			g = ag[ai]
		} else {
			g = remG0 + int64(ri)
		}
		if !crossed && g > cross {
			nw = sumFloats(buf)
			e.freshSum[i] = nw
			crossed = true
		}
		if takeArr {
			buf = append(buf, aw[ai])
			nw += aw[ai]
			ai++
		} else {
			idx := rem[ri]
			last := len(buf) - 1
			w := buf[idx]
			buf[idx] = buf[last]
			buf = buf[:last]
			nw -= w
			ri++
		}
	}
	if !crossed {
		nw = sumFloats(buf)
		e.freshSum[i] = nw
	}
	e.nodeWeight[i] = nw
	copy(newSeg, buf)
	sc.buf = buf[:0]
}

// sumFloats folds left to right — the summation order of
// WeightedState.RecomputeWeights over one node's task array.
func sumFloats(v []float64) float64 {
	w := 0.0
	for _, x := range v {
		w += x
	}
	return w
}

// WeightedEngine is driven through the shared core.Drive loop.
var _ core.Engine[*core.WeightedState] = (*WeightedEngine)(nil)
var _ core.DynamicEngine = (*WeightedEngine)(nil)

// Step implements core.Engine: one synchronous round r drawing
// randomness from base under the At(r, i) contract.
func (e *WeightedEngine) Step(r uint64, base *rng.Stream) (int64, error) {
	if base == nil {
		return 0, errors.New("shard: nil base stream")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	e.dispatch(phase{kind: phaseLoads})
	e.dispatch(phase{kind: phaseDecide, round: base.Split(r)})
	// Serial inter-barrier bookkeeping: lay the shards' moves onto the
	// round's global move timeline (sources ascending — shards are
	// contiguous ascending index ranges).
	total := int64(0)
	for s, m := range e.moves {
		e.shardBase[s] = total
		total += m
	}
	// Does the sequential engine's periodic weight recompute fire this
	// round? moveTask increments its counter once per move and rebuilds
	// the cached sums on reaching the threshold. The rebuild reads only
	// the task arrays — whose evolution is independent of the cache — so
	// only the LAST firing is observable in the post-round state: the
	// commit replays layouts as usual and refreshes the sums at that
	// single instant.
	e.crossAt = -1
	if e.sinceRecompute+total >= core.WeightRecomputeEvery {
		first := core.WeightRecomputeEvery - e.sinceRecompute
		firings := 1 + (total-first)/core.WeightRecomputeEvery
		last := first + (firings-1)*core.WeightRecomputeEvery
		e.crossAt = last - 1
		e.sinceRecompute = total - last
	} else {
		e.sinceRecompute += total
	}
	e.dispatch(phase{kind: phaseCommit})
	if e.crossAt >= 0 {
		// RecomputeWeights folds the total in node order.
		t := 0.0
		for _, w := range e.freshSum {
			t += w
		}
		e.totalW = t
	}
	return total, nil
}

// ApplyEvents implements core.DynamicEngine: pre-round weighted
// workload mutation with WeightedState.ApplyEvents semantics — arrivals
// injected first (nodes ascending), then departures drained most-recent
// first, clamped to the queue — and with its exact floating-point
// bookkeeping order, so ledgers and trajectories stay bit-identical.
// Unlike the sequential mutator, validation happens up front: an
// invalid batch returns an error with no partial application.
func (e *WeightedEngine) ApplyEvents(batch *core.EventBatch) (core.EventLedger, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return core.EventLedger{}, ErrClosed
	}
	var led core.EventLedger
	if batch == nil {
		return led, nil
	}
	n := e.csr.N()
	if len(batch.WeightArrivals) != 0 && len(batch.WeightArrivals) != n {
		return led, fmt.Errorf("core: %d weight-arrival entries for %d nodes", len(batch.WeightArrivals), n)
	}
	if len(batch.WeightDepartures) != 0 && len(batch.WeightDepartures) != n {
		return led, fmt.Errorf("core: %d weight-departure entries for %d nodes", len(batch.WeightDepartures), n)
	}
	events := int64(0)
	for i, ws := range batch.WeightArrivals {
		if err := task.Weights(ws).Validate(); err != nil {
			return led, fmt.Errorf("node %d: %w", i, err)
		}
		events += int64(len(ws))
	}
	for i, d := range batch.WeightDepartures {
		if d < 0 {
			return led, fmt.Errorf("core: negative weight departure %d at node %d", d, i)
		}
		events += e.drainCount(i, batch)
	}
	if e.sinceRecompute+events >= core.WeightRecomputeEvery {
		return e.slowApplyEvents(batch)
	}
	// Fast path (no recompute fires): two global passes mirror the
	// sequential loops — all injections (nodes ascending), then all
	// drains — so the shared totalW and ledger accumulators receive
	// their float64 operations in the identical global order; the
	// per-node weight sums see only their own operations, whose order
	// the per-node grouping preserves.
	for i, ws := range batch.WeightArrivals {
		if len(ws) == 0 {
			continue
		}
		for _, w := range ws {
			e.nodeWeight[i] += w
			e.totalW += w
		}
		e.count += int64(len(ws))
		led.ArrivedTasks += int64(len(ws))
		for _, w := range ws {
			led.ArrivedWeight += w
		}
	}
	for i, d := range batch.WeightDepartures {
		k := e.drainCount(i, batch)
		if d <= 0 || k <= 0 {
			continue
		}
		oldCnt := e.nodeCount(i)
		var arr []float64
		if len(batch.WeightArrivals) != 0 {
			arr = batch.WeightArrivals[i]
		}
		cut := oldCnt + int64(len(arr)) - k
		seg := e.nodeSegment(i)
		t := 0.0
		for p := cut; p < oldCnt+int64(len(arr)); p++ {
			var w float64
			if p < oldCnt {
				w = seg[p]
			} else {
				w = arr[p-oldCnt]
			}
			e.nodeWeight[i] -= w
			e.totalW -= w
			t += w
		}
		e.count -= k
		led.DepartedTasks += k
		led.DepartedWeight += t
	}
	e.sinceRecompute += events
	e.rebuildAfterEvents(batch)
	return led, nil
}

// drainCount returns the number of tasks a departure request at node i
// actually removes: the request clamped to the queue after arrivals,
// exactly as WeightedState.Drain clamps it.
func (e *WeightedEngine) drainCount(i int, batch *core.EventBatch) int64 {
	if len(batch.WeightDepartures) == 0 {
		return 0
	}
	d := batch.WeightDepartures[i]
	if d <= 0 {
		return 0
	}
	have := e.nodeCount(i)
	if len(batch.WeightArrivals) != 0 {
		have += int64(len(batch.WeightArrivals[i]))
	}
	if d > have {
		d = have
	}
	return d
}

// nodeCount returns |x(i)| from the flat offsets.
func (e *WeightedEngine) nodeCount(i int) int64 {
	s := int(e.part.shardOf[i])
	lo, _ := e.part.Range(s)
	return e.off[s][i-lo+1] - e.off[s][i-lo]
}

// nodeSegment returns node i's current pool segment (read-only view).
func (e *WeightedEngine) nodeSegment(i int) []float64 {
	s := int(e.part.shardOf[i])
	lo, _ := e.part.Range(s)
	return e.pool[s][e.off[s][i-lo]:e.off[s][i-lo+1]]
}

// rebuildAfterEvents rewrites the pools of every shard touched by the
// batch: each node keeps (old ++ arrivals) truncated by its applied
// drain — the layout Inject-then-Drain produces. Untouched shards keep
// their pools.
func (e *WeightedEngine) rebuildAfterEvents(batch *core.EventBatch) {
	for s := 0; s < e.part.P(); s++ {
		lo, hi := e.part.Range(s)
		touched := false
		for i := lo; i < hi && !touched; i++ {
			if len(batch.WeightArrivals) != 0 && len(batch.WeightArrivals[i]) > 0 {
				touched = true
			}
			if e.drainCount(i, batch) > 0 {
				touched = true
			}
		}
		if !touched {
			continue
		}
		off, noff := e.off[s], e.noff[s]
		noff[0] = 0
		for i := lo; i < hi; i++ {
			k := i - lo
			a := int64(0)
			if len(batch.WeightArrivals) != 0 {
				a = int64(len(batch.WeightArrivals[i]))
			}
			noff[k+1] = noff[k] + (off[k+1] - off[k]) + a - e.drainCount(i, batch)
		}
		spare := growFloats(e.spare[s], noff[hi-lo])
		pool := e.pool[s]
		for i := lo; i < hi; i++ {
			k := i - lo
			oldSeg := pool[off[k]:off[k+1]]
			newSeg := spare[noff[k]:noff[k+1]]
			kept := copy(newSeg, oldSeg)
			if len(batch.WeightArrivals) != 0 {
				copy(newSeg[kept:], batch.WeightArrivals[i])
			}
		}
		e.pool[s], e.spare[s] = spare, pool[:0]
		e.off[s], e.noff[s] = e.noff[s], e.off[s]
	}
}

// slowApplyEvents is the exact-replication path for the rare batch
// whose update count crosses the periodic recompute threshold: it
// materializes the per-node arrays and runs the literal sequential
// mutator sequence — Inject, Drain, counter increments and the
// mid-batch RecomputeWeights firings — then re-flattens. Allocation is
// acceptable here: the threshold admits this path at most once per
// 2²⁰ events.
func (e *WeightedEngine) slowApplyEvents(batch *core.EventBatch) (core.EventLedger, error) {
	var led core.EventLedger
	n := e.csr.N()
	tasks := make([][]float64, n)
	for i := 0; i < n; i++ {
		tasks[i] = append([]float64(nil), e.nodeSegment(i)...)
	}
	recompute := func() {
		total := 0.0
		for i, ts := range tasks {
			w := sumFloats(ts)
			e.nodeWeight[i] = w
			total += w
		}
		e.totalW = total
		e.sinceRecompute = 0
	}
	for i, ws := range batch.WeightArrivals {
		if len(ws) == 0 {
			continue
		}
		for _, w := range ws {
			tasks[i] = append(tasks[i], w)
			e.nodeWeight[i] += w
			e.totalW += w
		}
		e.count += int64(len(ws))
		e.sinceRecompute += int64(len(ws))
		if e.sinceRecompute >= core.WeightRecomputeEvery {
			recompute()
		}
		led.ArrivedTasks += int64(len(ws))
		for _, w := range ws {
			led.ArrivedWeight += w
		}
	}
	for i, d := range batch.WeightDepartures {
		k := int(d)
		if k <= 0 {
			continue
		}
		if k > len(tasks[i]) {
			k = len(tasks[i])
		}
		if k == 0 {
			continue
		}
		cut := len(tasks[i]) - k
		removed := tasks[i][cut:]
		tasks[i] = tasks[i][:cut]
		for _, w := range removed {
			e.nodeWeight[i] -= w
			e.totalW -= w
		}
		e.count -= int64(k)
		e.sinceRecompute += int64(k)
		if e.sinceRecompute >= core.WeightRecomputeEvery {
			recompute()
		}
		led.DepartedTasks += int64(k)
		led.DepartedWeight += sumFloats(removed)
	}
	for s := 0; s < e.part.P(); s++ {
		lo, hi := e.part.Range(s)
		off := e.off[s]
		total := int64(0)
		for i := lo; i < hi; i++ {
			off[i-lo+1] = total + int64(len(tasks[i]))
			total = off[i-lo+1]
		}
		pool := growFloats(e.pool[s], total)
		for i := lo; i < hi; i++ {
			copy(pool[off[i-lo]:off[i-lo+1]], tasks[i])
		}
		e.pool[s] = pool
	}
	return led, nil
}

// State implements core.Engine by materializing the flat pools as a
// core.WeightedState: the task layout is copied verbatim and the cached
// weight sums are adopted bit-for-bit (NewWeightedStateFromFlat), so
// the state's loads and potentials equal the sequential engine's
// exactly.
func (e *WeightedEngine) State() (*core.WeightedState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	n := e.csr.N()
	pool := make([]float64, 0, e.count)
	off := make([]int64, n+1)
	for s := 0; s < e.part.P(); s++ {
		lo, hi := e.part.Range(s)
		soff := e.off[s]
		for i := lo; i < hi; i++ {
			pool = append(pool, e.pool[s][soff[i-lo]:soff[i-lo+1]]...)
			off[i+1] = int64(len(pool))
		}
	}
	return core.NewWeightedStateFromFlat(e.sys, pool, off, e.nodeWeight, e.totalW, int(e.sinceRecompute))
}

// NodeWeights returns a copy of the cached per-node weight sums Wᵢ.
func (e *WeightedEngine) NodeWeights() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.nodeWeight...)
}

// TaskCount returns the current number of tasks.
func (e *WeightedEngine) TaskCount() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Partition exposes the engine's partition (for stats and tests).
func (e *WeightedEngine) Partition() *Partition { return e.part }

// Workers returns the worker-pool size.
func (e *WeightedEngine) Workers() int { return e.workers }

// Footprint returns the engine's resident state in bytes: the CSR
// arrays, the task-weight pools (both ping-pong halves), the offset
// arrays and every flat O(n) vector — the "bytes per node" numerator of
// the weighted scaling benchmark.
func (e *WeightedEngine) Footprint() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	bytes := e.csr.Bytes()
	bytes += int64(len(e.nodeWeight)+len(e.loads)+len(e.freshSum)) * 8
	bytes += int64(len(e.part.shardOf)) * 4
	for s := range e.pool {
		bytes += int64(cap(e.pool[s])+cap(e.spare[s])) * 8
		bytes += int64(len(e.off[s])+len(e.noff[s])+len(e.remPos[s])+len(e.arrPos[s])) * 8
		bytes += int64(cap(e.remIdx[s]))*4 + int64(len(e.arrCnt[s])+len(e.arrFill[s]))*4
		bytes += int64(cap(e.arrW[s]))*8 + int64(cap(e.arrG[s]))*8
		for d := range e.outFlows[s] {
			bytes += int64(cap(e.outFlows[s][d])) * 24
		}
	}
	return bytes
}

// Close stops the worker pool. Idempotent; Step after Close returns
// ErrClosed.
func (e *WeightedEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for _, ch := range e.kick {
		close(ch)
	}
	return nil
}

// String describes the engine configuration.
func (e *WeightedEngine) String() string {
	return fmt.Sprintf("shard.WeightedEngine(n=%d, P=%d, workers=%d, %s)", e.csr.N(), e.part.P(), e.workers, e.part.Strategy())
}

// growFloats returns buf resized to n elements, reallocating only when
// the capacity is insufficient (contents are unspecified).
func growFloats(buf []float64, n int64) []float64 {
	if int64(cap(buf)) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growInt64s is growFloats for []int64.
func growInt64s(buf []int64, n int64) []int64 {
	if int64(cap(buf)) < n {
		return make([]int64, n)
	}
	return buf[:n]
}
