// Weighted-engine acceptance tests: bit-identical RunResult + trace +
// final task multisets versus the sequential reference on every Table-1
// class, statically and under dynamic workloads (arrivals, bursts,
// completions, churn), for shard counts P ∈ {1, 2, 7} and both
// partition strategies, plus the P ≥ n clamp and the periodic
// weight-recompute crossing — the package's weighted determinism
// contract, exercised under -race in CI.
package shard_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/task"
	"repro/internal/workload"
)

// buildWeighted constructs a Table-1 instance with two-class speeds and
// the adversarial all-on-one weighted start.
func buildWeighted(t *testing.T, class experiments.GraphClass, n, tasksPerNode int) (*core.System, []task.Weights) {
	t.Helper()
	g, err := class.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	actualN := g.N()
	speeds, err := machine.TwoClass(actualN, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, speeds, core.WithLambda2(class.Lambda2(g)))
	if err != nil {
		t.Fatal(err)
	}
	weights, err := task.RandomWeights(tasksPerNode*actualN, 0.1, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	perNode, err := workload.WeightedAllOnOne(actualN, weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, perNode
}

// sameWeightedState demands exact equality of the cached weight sums
// and the task multisets, order included — the order is part of the
// determinism contract (Drain removes most-recent first).
func sameWeightedState(t *testing.T, label string, want, got *core.WeightedState) {
	t.Helper()
	n := want.System().N()
	for i := 0; i < n; i++ {
		if got.NodeWeight(i) != want.NodeWeight(i) {
			t.Fatalf("%s: node %d weight %g, want %g", label, i, got.NodeWeight(i), want.NodeWeight(i))
		}
		gw, rw := got.TaskWeights(i), want.TaskWeights(i)
		if len(gw) != len(rw) {
			t.Fatalf("%s: node %d has %d tasks, want %d", label, i, len(gw), len(rw))
		}
		for k := range gw {
			if gw[k] != rw[k] {
				t.Fatalf("%s: node %d task %d: %g, want %g", label, i, k, gw[k], rw[k])
			}
		}
	}
	if got.TotalWeight() != want.TotalWeight() {
		t.Fatalf("%s: total weight %g, want %g", label, got.TotalWeight(), want.TotalWeight())
	}
	if got.TaskCount() != want.TaskCount() {
		t.Fatalf("%s: %d tasks, want %d", label, got.TaskCount(), want.TaskCount())
	}
}

// TestWeightedShardParityStatic: seq vs weighted shard on every Table-1
// class with a stop condition, tracing, a CheckEvery that does not
// divide TraceEvery, every P and both strategies.
func TestWeightedShardParityStatic(t *testing.T) {
	for _, class := range experiments.Table1Classes() {
		class := class
		t.Run(class.Key, func(t *testing.T) {
			t.Parallel()
			sys, perNode := buildWeighted(t, class, 16, 60)
			stop := core.StopAtWeightedPsi0Below(4 * sys.PsiCriticalWeighted())
			opts := core.RunOpts{MaxRounds: 300_000, Seed: 21, TraceEvery: 5, CheckEvery: 2}
			ref, refState, err := harness.RunWeightedEngine(harness.EngineSeq, sys, core.Algorithm2{}, perNode, stop, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Converged || ref.Rounds == 0 {
				t.Fatalf("reference run did not converge meaningfully: %+v", ref)
			}
			for _, p := range shardCounts {
				for _, strategy := range []string{"contiguous", "degree"} {
					label := "weighted-shard/" + strategy
					res, gotState, err := harness.RunWeightedEngineOpts(harness.EngineShard, sys,
						core.Algorithm2{}, perNode, stop, opts,
						harness.EngineOpts{Shards: p, Workers: 2, Strategy: strategy})
					if err != nil {
						t.Fatalf("%s P=%d: %v", label, p, err)
					}
					sameRun(t, label, ref, res)
					sameWeightedState(t, label, refState, gotState)
				}
			}
		})
	}
}

// TestWeightedShardParityDynamic: the full weighted dynamic scenario —
// weighted arrivals, speed-proportional completions, bursts and
// alternating node churn — must be bit-identical to the sequential
// engine for every P, final task multisets included.
func TestWeightedShardParityDynamic(t *testing.T) {
	for _, class := range experiments.Table1Classes() {
		class := class
		t.Run(class.Key, func(t *testing.T) {
			t.Parallel()
			sys, perNode := buildWeighted(t, class, 16, 30)
			opts := harness.DynamicOpts{
				MaxRounds: 200,
				Seed:      77,
				Workload: dynamics.Workload{
					Seed:        1077,
					ArrivalRate: 12,
					ServiceRate: 0.5,
					BurstEvery:  40,
					BurstSize:   150,
				},
				Churn: dynamics.AlternatingChurn(200, 60),
			}
			ref, err := harness.RunWeightedDynamic(harness.EngineSeq, sys, core.Algorithm2{}, perNode, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Ledger.ArrivedTasks == 0 || ref.Ledger.DepartedTasks == 0 || ref.Epochs < 2 {
				t.Fatalf("scenario not exercising events/churn: %+v %+v", ref.Ledger, ref)
			}
			for _, p := range shardCounts {
				sopts := opts
				sopts.Engine = harness.EngineOpts{Shards: p, Workers: 2}
				res, err := harness.RunWeightedDynamic(harness.EngineShard, sys, core.Algorithm2{}, perNode, sopts)
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				if res.Rounds != ref.Rounds || res.Epochs != ref.Epochs || res.Moves != ref.Moves ||
					res.FinalN != ref.FinalN || res.Ledger != ref.Ledger || res.Metrics != ref.Metrics {
					t.Fatalf("P=%d: result %+v, want %+v", p, res, ref)
				}
				if len(res.Trace) != len(ref.Trace) {
					t.Fatalf("P=%d: %d trace points, want %d", p, len(res.Trace), len(ref.Trace))
				}
				for k := range ref.Trace {
					if res.Trace[k] != ref.Trace[k] {
						t.Fatalf("P=%d: trace[%d] = %+v, want %+v", p, k, res.Trace[k], ref.Trace[k])
					}
				}
				sameWeightedState(t, "dynamic", ref.FinalState, res.FinalState)
			}
		})
	}
}

// TestWeightedShardStepByStep drives the engine directly (no harness)
// and checks per-round move totals, cached weight sums and weight
// conservation against the sequential protocol.
func TestWeightedShardStepByStep(t *testing.T) {
	class, err := experiments.ClassByKey("torus")
	if err != nil {
		t.Fatal(err)
	}
	sys, perNode := buildWeighted(t, class, 36, 40)
	st, err := core.NewWeightedState(sys, perNode)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode, shard.Options{Shards: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	total := st.TotalWeight()
	seqBase, shardBase := rng.New(5), rng.New(5)
	proto := core.Algorithm2{}
	for r := uint64(1); r <= 40; r++ {
		wantMoves := int64(proto.Step(st, r, seqBase))
		gotMoves, err := eng.Step(r, shardBase)
		if err != nil {
			t.Fatal(err)
		}
		if gotMoves != wantMoves {
			t.Fatalf("round %d: %d moves, want %d", r, gotMoves, wantMoves)
		}
		nw := eng.NodeWeights()
		sum := 0.0
		for i := range nw {
			if nw[i] != st.NodeWeight(i) {
				t.Fatalf("round %d node %d: weight %g, want %g", r, i, nw[i], st.NodeWeight(i))
			}
			sum += nw[i]
		}
		if rel := (sum - total) / total; rel > 1e-9 || rel < -1e-9 {
			t.Fatalf("round %d: conservation broken, total %g, want %g", r, sum, total)
		}
	}
	got, err := eng.State()
	if err != nil {
		t.Fatal(err)
	}
	sameWeightedState(t, "step-by-step", st, got)
}

// TestWeightedShardApplyEvents checks dynamic event application parity
// against the state mutator, including departure clamping, on a
// multi-shard engine.
func TestWeightedShardApplyEvents(t *testing.T) {
	class, err := experiments.ClassByKey("ring")
	if err != nil {
		t.Fatal(err)
	}
	sys, perNode := buildWeighted(t, class, 12, 20)
	st, err := core.NewWeightedState(sys, perNode)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode, shard.Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	n := sys.N()
	batch := &core.EventBatch{
		WeightArrivals:   make([][]float64, n),
		WeightDepartures: make([]int64, n),
	}
	batch.WeightArrivals[3] = []float64{0.5, 0.25, 1}
	batch.WeightArrivals[n-1] = []float64{0.125}
	batch.WeightDepartures[0] = 1 << 40 // clamped to the queue
	batch.WeightDepartures[3] = 2
	wantLed, err := st.ApplyEvents(batch)
	if err != nil {
		t.Fatal(err)
	}
	gotLed, err := eng.ApplyEvents(batch)
	if err != nil {
		t.Fatal(err)
	}
	if gotLed != wantLed {
		t.Fatalf("ledger %+v, want %+v", gotLed, wantLed)
	}
	got, err := eng.State()
	if err != nil {
		t.Fatal(err)
	}
	sameWeightedState(t, "events", st, got)
	// A protocol round after the mutation must still track seq exactly.
	proto := core.Algorithm2{}
	proto.Step(st, 1, rng.New(8))
	if _, err := eng.Step(1, rng.New(8)); err != nil {
		t.Fatal(err)
	}
	got, err = eng.State()
	if err != nil {
		t.Fatal(err)
	}
	sameWeightedState(t, "events+round", st, got)
}

// TestWeightedShardRecomputeCrossing pins the rarest path: a run whose
// cumulative task moves cross the periodic weight-recompute threshold,
// where the sequential engine rebuilds its cached sums mid-round. The
// shard engine must fire the identical recompute at the identical move
// — the cache bits are observable through loads — so the final states
// must still match exactly. The threshold is lowered to 2²⁰ for the
// test (core.WeightRecomputeEvery is a var for exactly this purpose)
// so the scenario stays small; both engines read the same value, so
// the parity property under test is unchanged.
func TestWeightedShardRecomputeCrossing(t *testing.T) {
	if testing.Short() {
		t.Skip("2²⁰-move run in -short mode")
	}
	saved := core.WeightRecomputeEvery
	core.WeightRecomputeEvery = 1 << 20
	defer func() { core.WeightRecomputeEvery = saved }()
	class, err := experiments.ClassByKey("complete")
	if err != nil {
		t.Fatal(err)
	}
	g, err := class.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	sys, err := core.NewSystem(g, machine.Uniform(n), core.WithLambda2(class.Lambda2(g)))
	if err != nil {
		t.Fatal(err)
	}
	weights, err := task.RandomWeights(2_500_000, 0.1, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	perNode, err := workload.WeightedAllOnOne(n, weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.RunOpts{MaxRounds: 30, Seed: 13, TraceEvery: 10}
	ref, refState, err := harness.RunWeightedEngine(harness.EngineSeq, sys, core.Algorithm2{}, perNode, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Moves < int64(core.WeightRecomputeEvery) {
		t.Fatalf("scenario too small to cross the recompute threshold: %d moves", ref.Moves)
	}
	res, gotState, err := harness.RunWeightedEngineOpts(harness.EngineShard, sys, core.Algorithm2{}, perNode, nil, opts,
		harness.EngineOpts{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "crossing", ref, res)
	sameWeightedState(t, "crossing", refState, gotState)
}

// TestWeightedShardPartitionClamp is the P ≥ n regression test: shard
// counts at and far above the node count are clamped to n (NewPartition
// never runs with empty shards) and still reproduce the reference
// trajectory bit-for-bit.
func TestWeightedShardPartitionClamp(t *testing.T) {
	class, err := experiments.ClassByKey("hypercube")
	if err != nil {
		t.Fatal(err)
	}
	sys, perNode := buildWeighted(t, class, 16, 30)
	n := sys.N()
	opts := core.RunOpts{MaxRounds: 50, Seed: 9, TraceEvery: 10}
	ref, refState, err := harness.RunWeightedEngine(harness.EngineSeq, sys, core.Algorithm2{}, perNode, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{n, n + 1, 1000} {
		eng, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode, shard.Options{Shards: p, Workers: 4})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got := eng.Partition().P(); got != n {
			t.Errorf("P=%d: partition has %d shards, want clamp to %d", p, got, n)
		}
		eng.Close()
		res, gotState, err := harness.RunWeightedEngineOpts(harness.EngineShard, sys, core.Algorithm2{}, perNode, nil, opts,
			harness.EngineOpts{Shards: p, Workers: 4})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		sameRun(t, "clamp", ref, res)
		sameWeightedState(t, "clamp", refState, gotState)
	}
}

// TestWeightedShardLifecycle covers construction validation and the
// closed state.
func TestWeightedShardLifecycle(t *testing.T) {
	class, err := experiments.ClassByKey("ring")
	if err != nil {
		t.Fatal(err)
	}
	sys, perNode := buildWeighted(t, class, 8, 10)
	if _, err := shard.NewWeighted(nil, core.Algorithm2{}, perNode, shard.Options{}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := shard.NewWeighted(sys, nil, perNode, shard.Options{}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode[:3], shard.Options{}); err == nil {
		t.Error("short perNode accepted")
	}
	bad := append([]task.Weights(nil), perNode...)
	bad[2] = task.Weights{1.5}
	if _, err := shard.NewWeighted(sys, core.Algorithm2{}, bad, shard.Options{}); err == nil {
		t.Error("out-of-range weight accepted")
	}
	if _, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode, shard.Options{Strategy: "warp"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	eng, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Footprint() <= 0 {
		t.Error("zero footprint")
	}
	if _, err := eng.Step(1, nil); err == nil {
		t.Error("nil base stream accepted")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
	if _, err := eng.Step(1, rng.New(1)); !errors.Is(err, shard.ErrClosed) {
		t.Errorf("Step after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.ApplyEvents(&core.EventBatch{}); !errors.Is(err, shard.ErrClosed) {
		t.Errorf("ApplyEvents after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.State(); !errors.Is(err, shard.ErrClosed) {
		t.Errorf("State after Close: %v, want ErrClosed", err)
	}
	// The dispatcher rejects protocols that cannot decide against flat
	// state (the [6] baseline does not factorize into per-node
	// decisions at all).
	if _, _, err := harness.RunWeightedEngine(harness.EngineShard, sys, core.BaselineWeighted{}, perNode, nil,
		core.RunOpts{MaxRounds: 1, Seed: 1}); err == nil {
		t.Error("shard accepted a non-flat weighted protocol")
	}
}
