package shard

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// Strategy selects how the partitioner places the shard cut points.
type Strategy string

const (
	// Contiguous splits the vertex range into P shards of (near-)equal
	// node count. Right for the regular families, where degree is
	// uniform and vertex index is already the best locality order.
	Contiguous Strategy = "contiguous"
	// DegreeBalanced splits the vertex range into P contiguous shards
	// of (near-)equal degree mass, so skewed-degree graphs (stars,
	// barbells, power laws) don't leave one worker holding all the
	// edges. Shards remain contiguous index ranges — only the cut
	// points move.
	DegreeBalanced Strategy = "degree"
)

// Partition is an immutable split of a CSR graph's vertices into P
// contiguous shards plus the precomputed cross-shard structure: the
// directed cross-edge counts, which the two-phase engine uses to
// pre-size its inter-shard flow buffers, per-shard boundary node lists,
// and per-shard halo sets (the out-of-shard neighbor closure) — the
// exact foreign loads a shard's decide phase can read, which the
// cluster layer uses to exchange O(cut) loads per round instead of the
// full vector.
type Partition struct {
	csr      *graph.CSR
	strategy Strategy
	p        int

	lo, hi  []int32 // shard s owns vertices [lo[s], hi[s])
	shardOf []int32 // vertex -> owning shard

	// boundary[s] lists the vertices of shard s with at least one
	// neighbor outside s, in ascending order.
	boundary [][]int32
	// halo[s] lists the out-of-shard vertices adjacent to shard s — the
	// exact set of foreign loads shard s's decide phase can read — in
	// ascending order. Ascending order doubles as the deterministic
	// halo-slot order of the wire exchange: slot k of shard s's halo
	// frame always carries halo[s][k]'s load. Every halo vertex of s is
	// by construction a boundary vertex of its owning shard.
	halo [][]int32
	// crossEdges[s][d] counts directed edges from shard s into shard d
	// (s ≠ d); it is an upper bound on — and the preallocated capacity
	// of — the flow entries s can emit toward d in one round.
	crossEdges [][]int
}

// NewPartition splits the graph into p shards with the given strategy
// ("" means Contiguous). p is clamped to [1, n].
func NewPartition(c *graph.CSR, p int, strategy Strategy) (*Partition, error) {
	if c == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	n := c.N()
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	pt := &Partition{
		csr:      c,
		strategy: strategy,
		p:        p,
		lo:       make([]int32, p),
		hi:       make([]int32, p),
		shardOf:  make([]int32, n),
	}
	switch strategy {
	case "", Contiguous:
		pt.strategy = Contiguous
		pt.cutByCount()
	case DegreeBalanced:
		pt.cutByDegree()
	default:
		return nil, fmt.Errorf("shard: unknown partition strategy %q (want %q or %q)", strategy, Contiguous, DegreeBalanced)
	}
	for s := 0; s < p; s++ {
		for v := pt.lo[s]; v < pt.hi[s]; v++ {
			pt.shardOf[v] = int32(s)
		}
	}
	pt.computeBoundary()
	return pt, nil
}

// cutByCount assigns near-equal vertex counts per shard.
func (pt *Partition) cutByCount() {
	n := pt.csr.N()
	per, extra := n/pt.p, n%pt.p
	lo := 0
	for s := 0; s < pt.p; s++ {
		size := per
		if s < extra {
			size++
		}
		pt.lo[s], pt.hi[s] = int32(lo), int32(lo+size)
		lo += size
	}
}

// cutByDegree walks the vertex range accumulating degree mass (deg+1,
// so isolated stretches still carry weight) and closes shard s once its
// share of the total is reached — while always leaving at least one
// vertex for each remaining shard.
func (pt *Partition) cutByDegree() {
	c := pt.csr
	n := c.N()
	total := int64(c.DegreeSum()) + int64(n)
	acc := int64(0)
	s := 0
	pt.lo[0] = 0
	for v := 0; v < n && s < pt.p-1; v++ {
		acc += int64(c.Degree(v)) + 1
		remaining := pt.p - s - 1
		// Close the shard when its mass share is reached — or when the
		// node budget forces it (exactly one vertex left per remaining
		// shard), so every shard stays non-empty even for p close to n.
		mustClose := n-1-v == remaining
		if mustClose || (acc*int64(pt.p) >= total*int64(s+1) && n-1-v >= remaining) {
			pt.hi[s] = int32(v + 1)
			pt.lo[s+1] = int32(v + 1)
			s++
		}
	}
	pt.hi[pt.p-1] = int32(n)
}

// computeBoundary fills the boundary node lists, the halo sets and the
// directed cross-edge count matrix in one O(n + m) sweep. Halo members
// are deduplicated with a stamp array (a vertex adjacent to several of
// s's nodes enters halo[s] once); since shards own contiguous index
// ranges and vertices are visited ascending, the out-of-shard neighbors
// are collected unordered and sorted per shard afterwards.
func (pt *Partition) computeBoundary() {
	pt.boundary = make([][]int32, pt.p)
	pt.halo = make([][]int32, pt.p)
	pt.crossEdges = make([][]int, pt.p)
	for s := range pt.crossEdges {
		pt.crossEdges[s] = make([]int, pt.p)
	}
	c := pt.csr
	stamp := make([]int32, c.N())
	for i := range stamp {
		stamp[i] = -1
	}
	for s := 0; s < pt.p; s++ {
		cross := pt.crossEdges[s]
		for v := pt.lo[s]; v < pt.hi[s]; v++ {
			external := false
			for _, w := range c.Neighbors(int(v)) {
				if d := pt.shardOf[w]; int(d) != s {
					cross[d]++
					external = true
					if stamp[w] != int32(s) {
						stamp[w] = int32(s)
						pt.halo[s] = append(pt.halo[s], w)
					}
				}
			}
			if external {
				pt.boundary[s] = append(pt.boundary[s], v)
			}
		}
		slices.Sort(pt.halo[s])
	}
}

// P returns the number of shards.
func (pt *Partition) P() int { return pt.p }

// Strategy returns the resolved placement strategy.
func (pt *Partition) Strategy() Strategy { return pt.strategy }

// Range returns the contiguous vertex range [lo, hi) owned by shard s.
func (pt *Partition) Range(s int) (lo, hi int) { return int(pt.lo[s]), int(pt.hi[s]) }

// ShardOf returns the shard owning vertex v.
func (pt *Partition) ShardOf(v int) int { return int(pt.shardOf[v]) }

// Boundary returns shard s's boundary vertices (ascending). The slice
// aliases internal storage and must not be modified.
func (pt *Partition) Boundary(s int) []int32 { return pt.boundary[s] }

// Halo returns shard s's halo vertices — the out-of-shard neighbors of
// its nodes, ascending. Index k in the returned slice is vertex
// Halo(s)[k]'s halo slot: the wire exchange ships shard s exactly these
// loads, in exactly this order. The slice aliases internal storage and
// must not be modified.
func (pt *Partition) Halo(s int) []int32 { return pt.halo[s] }

// HaloSlot returns vertex v's slot in shard s's halo order, or -1 when
// v is not in the halo. The index is compact — a binary search over the
// sorted halo list, no n-length table.
func (pt *Partition) HaloSlot(s int, v int32) int {
	k, ok := slices.BinarySearch(pt.halo[s], v)
	if !ok {
		return -1
	}
	return k
}

// CrossEdges returns the number of directed edges from shard s into
// shard d.
func (pt *Partition) CrossEdges(s, d int) int { return pt.crossEdges[s][d] }

// CutEdges returns the total number of undirected edges crossing any
// shard boundary — the partition-quality number the scaling experiment
// reports.
func (pt *Partition) CutEdges() int {
	total := 0
	for s := 0; s < pt.p; s++ {
		for d := 0; d < pt.p; d++ {
			total += pt.crossEdges[s][d]
		}
	}
	return total / 2
}

// DegreeMass returns the degree+1 mass of shard s, for balance checks.
func (pt *Partition) DegreeMass(s int) int64 {
	mass := int64(0)
	for v := pt.lo[s]; v < pt.hi[s]; v++ {
		mass += int64(pt.csr.Degree(int(v))) + 1
	}
	return mass
}
