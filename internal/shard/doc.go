// Package shard is the large-scale execution engine: the fourth engine
// of the simulator (after the sequential reference, the fork–join
// runtime and the actor network), built for instances of 10⁵–10⁷
// nodes where the others' pointer-heavy state and per-round
// allocations dominate.
//
// Three layers:
//
//   - Data: the engine operates on the flat CSR view of the network
//     (graph.CSR — []int32 offsets/neighbors) and flat []int64 counts /
//     []float64 loads vectors. For the Table-1 families the CSR arrays
//     are constructed directly (graph.RingCSR etc.), so a million-node
//     instance never materializes an edge list or edge map.
//
//   - Partition: nodes are split into P contiguous shards, either by
//     node count (Contiguous) or by degree mass (DegreeBalanced), with
//     the cross-shard boundary precomputed: which nodes have external
//     neighbors, and how many edges cross from shard s to shard d. The
//     cross-edge counts pre-size the inter-shard flow buffers so the
//     decide loop never grows a slice.
//
//   - Execution: each round runs in phases with barriers between
//     them — (1) every shard refreshes its slice of the round-start
//     load snapshot; (2) every shard evaluates its nodes'
//     DecideNode calls, accumulating migrations into a dense local
//     delta for in-shard destinations and into per-destination-shard
//     flow lists for cross-shard ones; (3) every shard commits the
//     deltas addressed to it — its own dense buffer plus the flow
//     lists from every other shard. A node's counts are written only
//     by its owning shard's committer, so there are no cross-shard
//     data races by construction, and the hot path performs no
//     allocations (worker streams are derived with rng.SplitTo into
//     per-worker scratch, and protocol sampling runs through
//     rng.EqualSplitInto).
//
// Determinism: node i's round-r randomness is drawn from the stream
// base.At(r, i) — the same keying contract every other engine pins —
// and delta commit is integer addition, which is order-independent. A
// shard.Engine trajectory is therefore bit-identical to the sequential
// engine's for any shard count, any worker count and either partition
// strategy; the parity tests demand exactly that, statically and under
// dynamic workloads, for P ∈ {1, 2, 7}.
//
// WeightedEngine extends the same architecture to weighted tasks
// (Algorithm 2). The task weights live in one contiguous pool per
// shard with per-node offsets; the decide phase never reads them —
// Algorithm 2's migration law depends only on loads and the cached
// node-weight sums (core.WeightedFlatProtocol), which is the paper's
// exchangeability property turned into a storage layout. The commit
// phase replays, per node, the exact operation sequence of the
// sequential core.ApplyMoves — swap-deletes, append order, per-move
// float64 weight-sum updates and the periodic WeightRecomputeEvery
// cache rebuild — by merging each node's incoming tasks and own
// removals along the round's global move timeline. Weighted
// trajectories, traces, ledgers and final task multisets are therefore
// bit-identical to core.RunWeighted as well; see DESIGN.md ("Weighted
// tasks at scale") for the replay argument.
package shard
