package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/transport"
)

// ErrClosed is returned by Step on an engine whose Close has been
// called.
var ErrClosed = errors.New("shard: engine is closed")

// Options configures engine construction. The zero value is valid:
// one shard per worker, one worker per core, contiguous cuts.
type Options struct {
	// Shards is the partition size P (0 means Workers; clamped to
	// [1, n]). The trajectory is identical for every value.
	Shards int
	// Workers bounds the worker goroutines (0 means GOMAXPROCS; never
	// more than Shards).
	Workers int
	// Strategy selects the partitioner ("" means Contiguous).
	Strategy Strategy
}

// Engine is the CSR-backed sharded execution engine for uniform tasks.
// State lives in flat arrays (counts, loads); each round runs in three
// barrier-separated phases (snapshot loads, decide, commit) across P
// shards on a persistent worker pool. See the package comment for the
// race-freedom and determinism argument.
//
// Engine implements core.Engine[*core.UniformState] and
// core.DynamicEngine, so core.Drive gives it stop conditions, traces
// and dynamic workloads exactly as for every other engine. Public
// methods serialize on an internal mutex.
type Engine struct {
	sys   *core.System
	csr   *graph.CSR
	proto core.UniformNodeProtocol
	part  *Partition

	mu     sync.Mutex
	counts []int64
	loads  []float64
	// view is the decide phase's read surface over loads. In process it
	// aliases loads zero-copy and every entry is fresh; a cluster worker
	// refreshes only its own span and halo slots (see LoadView).
	view LoadView

	// Per-shard buffers (indexed by shard, not worker, so results do
	// not depend on which worker evaluates a shard).
	local    [][]int64            // dense deltas for the shard's own range
	outFlows [][][]transport.Flow // outFlows[s][d]: migrations from shard s into shard d
	moves    []int64

	// tr exchanges the outbound flow lists across the decide/commit
	// barrier: memTransport (zero-copy slice handoff) in process, a
	// socket-backed transport in a cluster worker.
	tr Transport

	// Per-worker scratch for the decide loop.
	scratch []*decideScratch

	workers int
	kick    []chan phase
	wg      sync.WaitGroup
	closed  bool
	times   PhaseTimes

	// flowsCross counts the cross-shard flow records produced by decide
	// phases so far (telemetry; read via CrossFlows).
	flowsCross int64
}

// decideScratch is one worker's reusable decide-loop storage; child is
// the SplitTo target, so deriving a node stream allocates nothing.
type decideScratch struct {
	nb    []float64
	out   []int64
	child rng.Stream
}

// phase is one barrier-separated stage of a round, dispatched to every
// worker.
type phase struct {
	kind  int // phaseLoads | phaseDecide | phaseCommit
	round *rng.Stream
}

const (
	phaseLoads = iota
	phaseDecide
	phaseCommit
)

// New validates the instance, partitions the CSR view of the network,
// and starts the worker pool. counts is copied.
func New(sys *core.System, proto core.UniformNodeProtocol, counts []int64, opts Options) (*Engine, error) {
	if sys == nil {
		return nil, errors.New("shard: nil system")
	}
	if proto == nil {
		return nil, errors.New("shard: nil protocol")
	}
	// Reuse the state constructor for count validation (length, sign).
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		return nil, err
	}
	n := sys.N()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = workers
	}
	csr := sys.Graph().CSR()
	part, err := NewPartition(csr, shards, opts.Strategy)
	if err != nil {
		return nil, err
	}
	p := part.P()
	if workers > p {
		workers = p
	}
	e := &Engine{
		sys:      sys,
		csr:      csr,
		proto:    proto,
		part:     part,
		counts:   st.Counts(),
		loads:    make([]float64, n),
		local:    make([][]int64, p),
		outFlows: make([][][]transport.Flow, p),
		moves:    make([]int64, p),
		tr:       newMemTransport(p),
		scratch:  make([]*decideScratch, workers),
		workers:  workers,
		kick:     make([]chan phase, workers),
	}
	e.view = DenseLoadView(e.loads)
	maxDeg := csr.MaxDegree()
	for s := 0; s < p; s++ {
		lo, hi := part.Range(s)
		e.local[s] = make([]int64, hi-lo)
		e.outFlows[s] = make([][]transport.Flow, p)
		for d := 0; d < p; d++ {
			if c := part.CrossEdges(s, d); c > 0 {
				// A shard emits at most one flow entry per cross edge
				// per round, so this capacity is never exceeded: the
				// decide loop appends without ever growing.
				e.outFlows[s][d] = make([]transport.Flow, 0, c)
			}
		}
	}
	for w := 0; w < workers; w++ {
		e.scratch[w] = &decideScratch{nb: make([]float64, maxDeg), out: make([]int64, maxDeg)}
		e.kick[w] = make(chan phase)
		go func(w int) {
			for ph := range e.kick[w] {
				e.runPhase(w, ph)
				e.wg.Done()
			}
		}(w)
	}
	return e, nil
}

// dispatch runs one phase on every worker and blocks at the barrier.
// Callers hold e.mu.
func (e *Engine) dispatch(ph phase) {
	e.wg.Add(e.workers)
	for _, ch := range e.kick {
		ch <- ph
	}
	e.wg.Wait()
}

// runPhase executes a phase for every shard assigned to worker w
// (shards are striped over workers: s ≡ w mod workers). Shard results
// land in per-shard buffers, so the striping never influences the
// trajectory.
func (e *Engine) runPhase(w int, ph phase) {
	for s := w; s < e.part.P(); s += e.workers {
		switch ph.kind {
		case phaseLoads:
			e.snapshotLoads(s)
		case phaseDecide:
			e.decideShard(s, ph.round, e.scratch[w])
			e.tr.PublishFlows(s, e.outFlows[s])
		case phaseCommit:
			e.commitShard(s)
		}
	}
}

// snapshotLoads refreshes shard s's slice of the round-start load
// snapshot. The division matches the sequential engine's Load exactly.
func (e *Engine) snapshotLoads(s int) {
	lo, hi := e.part.Range(s)
	for i := lo; i < hi; i++ {
		e.loads[i] = float64(e.counts[i]) / e.sys.Speed(i)
	}
}

// decideShard evaluates shard s's protocol decisions against the
// round-start snapshot, scattering migrations into the shard's dense
// local delta (in-shard destinations) and its per-destination flow
// lists (cross-shard destinations). It only reads shared state and only
// writes shard-s buffers. The node stream is the contract stream
// roundStream.Split(i), derived allocation-free via SplitTo.
func (e *Engine) decideShard(s int, roundStream *rng.Stream, sc *decideScratch) {
	part, csr, sys := e.part, e.csr, e.sys
	lo, hi := part.Range(s)
	local := e.local[s]
	for k := range local {
		local[k] = 0
	}
	flows := e.outFlows[s]
	for d := range flows {
		if flows[d] != nil {
			flows[d] = flows[d][:0]
		}
	}
	moves := int64(0)
	for i := lo; i < hi; i++ {
		wi := e.counts[i]
		if wi == 0 {
			continue
		}
		nbs := csr.Neighbors(i)
		deg := len(nbs)
		for idx, j := range nbs {
			sc.nb[idx] = e.view.Load(j)
		}
		roundStream.SplitTo(uint64(i), &sc.child)
		m := e.proto.DecideNode(sys, i, wi, e.view.LoadAt(i), sc.nb[:deg], &sc.child, sc.out)
		if m == 0 {
			continue
		}
		moves += m
		local[i-lo] -= m
		for idx := 0; idx < deg; idx++ {
			amount := sc.out[idx]
			if amount == 0 {
				continue
			}
			j := nbs[idx]
			if d := int(part.shardOf[j]); d == s {
				local[int(j)-lo] += amount
			} else {
				flows[d] = append(flows[d], transport.Flow{Node: j, Amount: amount})
			}
		}
	}
	e.moves[s] = moves
}

// commitShard applies every delta addressed to shard s: its own dense
// local buffer plus the flow lists every other shard published through
// the transport. Shard s's counts are written only here, only by the
// worker running s, after the decide barrier — hence no data races and
// no locked hot path.
func (e *Engine) commitShard(s int) {
	lo, _ := e.part.Range(s)
	for k, d := range e.local[s] {
		if d != 0 {
			e.counts[lo+k] += d
		}
	}
	for src := 0; src < e.part.P(); src++ {
		if src == s {
			continue
		}
		for _, f := range e.tr.Flows(src, s) {
			e.counts[f.Node] += f.Amount
		}
	}
}

// Engine is driven through the shared core.Drive loop.
var _ core.Engine[*core.UniformState] = (*Engine)(nil)
var _ core.DynamicEngine = (*Engine)(nil)

// Step implements core.Engine: one synchronous round r drawing
// randomness from base under the At(r, i) contract.
func (e *Engine) Step(r uint64, base *rng.Stream) (int64, error) {
	if base == nil {
		return 0, errors.New("shard: nil base stream")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	t0 := time.Now()
	e.dispatch(phase{kind: phaseLoads})
	t1 := time.Now()
	e.dispatch(phase{kind: phaseDecide, round: base.Split(r)})
	// Telemetry only: tally this round's cross-shard flow records.
	// Integer length reads after the decide barrier — no effect on the
	// trajectory.
	for s := range e.outFlows {
		for d, l := range e.outFlows[s] {
			if d != s {
				e.flowsCross += int64(len(l))
			}
		}
	}
	t2 := time.Now()
	e.dispatch(phase{kind: phaseCommit})
	t3 := time.Now()
	e.times.Snapshot += t1.Sub(t0)
	e.times.Decide += t2.Sub(t1)
	e.times.Commit += t3.Sub(t2)
	e.times.Rounds++
	moves := int64(0)
	for _, m := range e.moves {
		moves += m
	}
	return moves, nil
}

// Phases implements PhaseTimer: cumulative per-phase wall-clock time
// across every Step so far.
func (e *Engine) Phases() PhaseTimes {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.times
}

// CrossFlows returns the cumulative number of cross-shard flow records
// the decide phases have produced — the engine's inter-shard traffic
// volume, the in-process analogue of the cluster's wire flows.
func (e *Engine) CrossFlows() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flowsCross
}

// ApplyEvents implements core.DynamicEngine: pre-round workload
// mutation through the shared ApplyCountsBatch semantics.
func (e *Engine) ApplyEvents(batch *core.EventBatch) (core.EventLedger, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return core.EventLedger{}, ErrClosed
	}
	return core.ApplyCountsBatch(e.counts, batch, nil)
}

// State implements core.Engine by materializing the flat counts as a
// core.UniformState for stop conditions and potential sampling.
func (e *Engine) State() (*core.UniformState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	return core.NewUniformState(e.sys, e.counts)
}

// Counts returns a copy of the current per-node task counts.
func (e *Engine) Counts() []int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int64, len(e.counts))
	copy(out, e.counts)
	return out
}

// NodeLoad returns node i's current load ℓᵢ = wᵢ/sᵢ from the flat
// counts — an O(1) read (UniformState.Load semantics) that lets a live
// observer (the serve daemon's GET /load) answer per-node queries
// without materializing the full state.
func (e *Engine) NodeLoad(i int) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.counts) {
		return 0, fmt.Errorf("shard: load of node %d of %d", i, len(e.counts))
	}
	return float64(e.counts[i]) / e.sys.Speed(i), nil
}

// Partition exposes the engine's partition (for stats and tests).
func (e *Engine) Partition() *Partition { return e.part }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Footprint returns the engine's resident state in bytes: the CSR
// arrays plus every flat vector and preallocated shard buffer. It is
// the "bytes per node" numerator of the scaling benchmarks — memory is
// bounded by the CSR arrays plus O(n) vectors and O(cut) flow
// capacity, never by edge maps.
func (e *Engine) Footprint() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	bytes := e.csr.Bytes()
	bytes += int64(len(e.counts)) * 8
	bytes += int64(len(e.loads)) * 8
	bytes += int64(len(e.part.shardOf)) * 4
	for s := range e.local {
		bytes += int64(len(e.local[s])) * 8
		for d := range e.outFlows[s] {
			bytes += int64(cap(e.outFlows[s][d])) * 16
		}
	}
	return bytes
}

// Close stops the worker pool. Idempotent; Step after Close returns
// ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for _, ch := range e.kick {
		close(ch)
	}
	return nil
}

// String describes the engine configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("shard.Engine(n=%d, P=%d, workers=%d, %s)", e.csr.N(), e.part.P(), e.workers, e.part.Strategy())
}
