// Engine acceptance tests for the sharded engine: bit-identical
// RunResult + trace + final counts versus the sequential reference on
// every Table-1 class, statically and under dynamic workloads
// (arrivals, departures, bursts, churn), for shard counts P ∈ {1, 2, 7}
// and both partition strategies — the package's determinism contract,
// exercised under -race in CI. The tests live in an external package so
// they can reuse the experiment classes and the harness dispatch.
package shard_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/workload"
)

// shardCounts is the P matrix the satellite task demands: degenerate
// (sequential-equivalent), even, and an odd count that never divides
// the instance sizes.
var shardCounts = []int{1, 2, 7}

// buildInstance constructs a Table-1 instance with two-class speeds and
// an adversarial two-corner start.
func buildInstance(t *testing.T, class experiments.GraphClass, n int) (*core.System, []int64) {
	t.Helper()
	g, err := class.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	actualN := g.N()
	speeds, err := machine.TwoClass(actualN, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, speeds, core.WithLambda2(class.Lambda2(g)))
	if err != nil {
		t.Fatal(err)
	}
	counts, err := workload.TwoCorners(actualN, int64(50*actualN), 0, actualN-1)
	if err != nil {
		t.Fatal(err)
	}
	return sys, counts
}

// sameRun demands exact RunResult equality, trace floats included.
func sameRun(t *testing.T, label string, want, got core.RunResult) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Converged != want.Converged || got.Moves != want.Moves {
		t.Fatalf("%s: RunResult (rounds=%d conv=%v moves=%d), want (rounds=%d conv=%v moves=%d)",
			label, got.Rounds, got.Converged, got.Moves, want.Rounds, want.Converged, want.Moves)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: %d trace points, want %d", label, len(got.Trace), len(want.Trace))
	}
	for k := range want.Trace {
		if got.Trace[k] != want.Trace[k] {
			t.Fatalf("%s: trace[%d] = %+v, want %+v", label, k, got.Trace[k], want.Trace[k])
		}
	}
}

func sameCounts(t *testing.T, label string, want, got []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d counts, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: node %d count %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestShardParityStatic: seq vs shard on every Table-1 class with a
// stop condition, tracing, a CheckEvery that does not divide
// TraceEvery, every P and both strategies.
func TestShardParityStatic(t *testing.T) {
	for _, class := range experiments.Table1Classes() {
		class := class
		t.Run(class.Key, func(t *testing.T) {
			t.Parallel()
			sys, counts := buildInstance(t, class, 16)
			stop := core.StopAtPsi0Below(4 * sys.PsiCritical())
			opts := core.RunOpts{MaxRounds: 200_000, Seed: 11, TraceEvery: 7, CheckEvery: 3}
			ref, refCounts, err := harness.RunUniformEngine(harness.EngineSeq, sys, core.Algorithm1{}, counts, stop, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Converged || ref.Rounds == 0 {
				t.Fatalf("reference run did not converge meaningfully: %+v", ref)
			}
			for _, p := range shardCounts {
				for _, strategy := range []string{"contiguous", "degree"} {
					label := harness.EngineShard + "/" + strategy
					res, gotCounts, err := harness.RunUniformEngineOpts(harness.EngineShard, sys,
						core.Algorithm1{}, counts, stop, opts,
						harness.EngineOpts{Shards: p, Workers: 2, Strategy: strategy})
					if err != nil {
						t.Fatalf("%s P=%d: %v", label, p, err)
					}
					sameRun(t, label, ref, res)
					sameCounts(t, label, refCounts, gotCounts)
				}
			}
		})
	}
}

// TestShardParityDynamic: the full dynamic scenario — continuous
// arrivals, speed-proportional completions, bursts and alternating node
// churn — must be bit-identical to the sequential engine for every P.
func TestShardParityDynamic(t *testing.T) {
	for _, class := range experiments.Table1Classes() {
		class := class
		t.Run(class.Key, func(t *testing.T) {
			t.Parallel()
			sys, counts := buildInstance(t, class, 16)
			opts := harness.DynamicOpts{
				MaxRounds: 200,
				Seed:      31,
				Workload: dynamics.Workload{
					Seed:        1031,
					ArrivalRate: 12,
					ServiceRate: 0.5,
					BurstEvery:  40,
					BurstSize:   150,
				},
				Churn: dynamics.AlternatingChurn(200, 60),
			}
			ref, err := harness.RunUniformDynamic(harness.EngineSeq, sys, core.Algorithm1{}, counts, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Ledger.Arrived == 0 || ref.Ledger.Departed == 0 || ref.Epochs < 2 {
				t.Fatalf("scenario not exercising events/churn: %+v %+v", ref.Ledger, ref)
			}
			for _, p := range shardCounts {
				sopts := opts
				sopts.Engine = harness.EngineOpts{Shards: p, Workers: 2}
				res, err := harness.RunUniformDynamic(harness.EngineShard, sys, core.Algorithm1{}, counts, sopts)
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				if res.Rounds != ref.Rounds || res.Epochs != ref.Epochs || res.Moves != ref.Moves ||
					res.FinalN != ref.FinalN || res.Ledger != ref.Ledger || res.Metrics != ref.Metrics {
					t.Fatalf("P=%d: result %+v, want %+v", p, res, ref)
				}
				if len(res.Trace) != len(ref.Trace) {
					t.Fatalf("P=%d: %d trace points, want %d", p, len(res.Trace), len(ref.Trace))
				}
				for k := range ref.Trace {
					if res.Trace[k] != ref.Trace[k] {
						t.Fatalf("P=%d: trace[%d] = %+v, want %+v", p, k, res.Trace[k], ref.Trace[k])
					}
				}
				sameCounts(t, "dynamic", ref.FinalCounts, res.FinalCounts)
			}
		})
	}
}

// TestShardStepByStep drives the engine directly (no harness) and
// checks per-round move totals and counts against the sequential
// protocol, plus conservation after every round.
func TestShardStepByStep(t *testing.T) {
	class, err := experiments.ClassByKey("torus")
	if err != nil {
		t.Fatal(err)
	}
	sys, counts := buildInstance(t, class, 36)
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.New(sys, core.Algorithm1{}, counts, shard.Options{Shards: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	seqBase, shardBase := rng.New(5), rng.New(5)
	proto := core.Algorithm1{}
	for r := uint64(1); r <= 40; r++ {
		wantMoves := proto.Step(st, r, seqBase)
		gotMoves, err := eng.Step(r, shardBase)
		if err != nil {
			t.Fatal(err)
		}
		if gotMoves != wantMoves {
			t.Fatalf("round %d: %d moves, want %d", r, gotMoves, wantMoves)
		}
		got := eng.Counts()
		sum := int64(0)
		for i := range got {
			if got[i] != st.Count(i) {
				t.Fatalf("round %d node %d: count %d, want %d", r, i, got[i], st.Count(i))
			}
			sum += got[i]
		}
		if sum != total {
			t.Fatalf("round %d: conservation broken, %d tasks, want %d", r, sum, total)
		}
	}
}

// TestShardApplyEvents checks dynamic event application parity against
// the state mutator, including departure clamping.
func TestShardApplyEvents(t *testing.T) {
	class, err := experiments.ClassByKey("ring")
	if err != nil {
		t.Fatal(err)
	}
	sys, counts := buildInstance(t, class, 12)
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.New(sys, core.Algorithm1{}, counts, shard.Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	batch := &core.EventBatch{
		Arrivals:   make([]int64, sys.N()),
		Departures: make([]int64, sys.N()),
	}
	batch.Arrivals[3] = 17
	batch.Departures[0] = 1 << 40 // clamped to the queue
	batch.Departures[5] = 2
	wantLed, err := st.ApplyEvents(batch)
	if err != nil {
		t.Fatal(err)
	}
	gotLed, err := eng.ApplyEvents(batch)
	if err != nil {
		t.Fatal(err)
	}
	if gotLed != wantLed {
		t.Fatalf("ledger %+v, want %+v", gotLed, wantLed)
	}
	sameCounts(t, "events", st.Counts(), eng.Counts())
}

// TestShardLifecycle covers construction validation and the closed
// state.
func TestShardLifecycle(t *testing.T) {
	class, err := experiments.ClassByKey("ring")
	if err != nil {
		t.Fatal(err)
	}
	sys, counts := buildInstance(t, class, 8)
	if _, err := shard.New(nil, core.Algorithm1{}, counts, shard.Options{}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := shard.New(sys, nil, counts, shard.Options{}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := shard.New(sys, core.Algorithm1{}, counts[:3], shard.Options{}); err == nil {
		t.Error("short counts accepted")
	}
	if _, err := shard.New(sys, core.Algorithm1{}, counts, shard.Options{Strategy: "warp"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	eng, err := shard.New(sys, core.Algorithm1{}, counts, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Footprint() <= 0 {
		t.Error("zero footprint")
	}
	if _, err := eng.Step(1, nil); err == nil {
		t.Error("nil base stream accepted")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
	if _, err := eng.Step(1, rng.New(1)); !errors.Is(err, shard.ErrClosed) {
		t.Errorf("Step after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.ApplyEvents(&core.EventBatch{}); !errors.Is(err, shard.ErrClosed) {
		t.Errorf("ApplyEvents after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.State(); !errors.Is(err, shard.ErrClosed) {
		t.Errorf("State after Close: %v, want ErrClosed", err)
	}
	// The weighted dispatcher validates its inputs too: a perNode
	// vector of the wrong length must be rejected, not mis-run.
	if _, _, err := harness.RunWeightedEngine(harness.EngineShard, sys, core.Algorithm2{}, nil, nil,
		core.RunOpts{MaxRounds: 1, Seed: 1}); err == nil {
		t.Error("weighted shard dispatch accepted nil perNode")
	}
}

// TestShardWorkerStriping pins worker/shard interaction: more shards
// than workers, more workers than shards, and the P > n clamp all
// produce the reference trajectory.
func TestShardWorkerStriping(t *testing.T) {
	class, err := experiments.ClassByKey("hypercube")
	if err != nil {
		t.Fatal(err)
	}
	sys, counts := buildInstance(t, class, 16)
	opts := core.RunOpts{MaxRounds: 60, Seed: 9, TraceEvery: 10}
	ref, refCounts, err := harness.RunUniformEngine(harness.EngineSeq, sys, core.Algorithm1{}, counts, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, eo := range []harness.EngineOpts{
		{Shards: 16, Workers: 3},   // striped: worker 0 runs shards 0,3,6,...
		{Shards: 2, Workers: 8},    // workers clamped to shards
		{Shards: 1000, Workers: 4}, // shards clamped to n
		{Shards: 5, Workers: 1},    // single worker, many shards
		{Workers: 2},               // shards default to workers
		{Shards: 4, Strategy: "degree"},
	} {
		res, gotCounts, err := harness.RunUniformEngineOpts(harness.EngineShard, sys,
			core.Algorithm1{}, counts, nil, opts, eo)
		if err != nil {
			t.Fatalf("%+v: %v", eo, err)
		}
		sameRun(t, "striping", ref, res)
		sameCounts(t, "striping", refCounts, gotCounts)
	}
}
