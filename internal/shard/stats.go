package shard

import (
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Cluster-wide telemetry. Every worker piggybacks one compact
// KindStats frame on the round barrier (right after KindStepDone) with
// its cumulative phase timings, barrier waits, flow volumes, and
// connection counters; the coordinator decodes them into WorkerStats
// and aggregates a ClusterStats view. The frames are pure
// observability: the coordinator never feeds a value from them into a
// protocol decision, so they cannot perturb the bit-exact trajectory —
// the cluster parity suites run with the exchange permanently on.

// WorkerStats is the cumulative telemetry one worker has reported:
// wall-clock nanoseconds per engine phase, time blocked waiting for
// coordinator barriers (the loads broadcast and the commit grant),
// cross-shard flow records shipped, and its transport counters.
type WorkerStats struct {
	SnapshotNs    int64               `json:"snapshotNs"`
	DecideNs      int64               `json:"decideNs"`
	CommitNs      int64               `json:"commitNs"`
	BarrierWaitNs int64               `json:"barrierWaitNs"`
	FlowsOut      int64               `json:"flowsOut"`
	Conn          transport.ConnStats `json:"conn"`
}

func encodeWorkerStats(b *transport.Buffer, ws WorkerStats) {
	b.PutI64(ws.SnapshotNs)
	b.PutI64(ws.DecideNs)
	b.PutI64(ws.CommitNs)
	b.PutI64(ws.BarrierWaitNs)
	b.PutI64(ws.FlowsOut)
	b.PutU64(ws.Conn.FramesSent)
	b.PutU64(ws.Conn.BytesSent)
	b.PutU64(ws.Conn.FramesRecv)
	b.PutU64(ws.Conn.BytesRecv)
}

func decodeWorkerStats(b *transport.Buffer) (WorkerStats, error) {
	var ws WorkerStats
	var err error
	if ws.SnapshotNs, err = b.I64(); err != nil {
		return ws, err
	}
	if ws.DecideNs, err = b.I64(); err != nil {
		return ws, err
	}
	if ws.CommitNs, err = b.I64(); err != nil {
		return ws, err
	}
	if ws.BarrierWaitNs, err = b.I64(); err != nil {
		return ws, err
	}
	if ws.FlowsOut, err = b.I64(); err != nil {
		return ws, err
	}
	if ws.Conn.FramesSent, err = b.U64(); err != nil {
		return ws, err
	}
	if ws.Conn.BytesSent, err = b.U64(); err != nil {
		return ws, err
	}
	if ws.Conn.FramesRecv, err = b.U64(); err != nil {
		return ws, err
	}
	if ws.Conn.BytesRecv, err = b.U64(); err != nil {
		return ws, err
	}
	return ws, nil
}

// ClusterStats is the coordinator's aggregated telemetry: its own
// stage timings (as PhaseTimes: loads ≈ snapshot, flow gather ≈
// decide, grant/step-done ≈ commit), the latest cumulative per-worker
// reports, coordinator-side transport totals, and checkpoint-write
// durations.
type ClusterStats struct {
	Rounds      int64               `json:"rounds"`
	Coordinator PhaseTimes          `json:"coordinator"`
	Workers     []WorkerStats       `json:"workers"`
	Transport   transport.ConnStats `json:"transport"`

	// Sums over workers, for one-line summaries and flat metrics.
	BarrierWaitNs int64 `json:"barrierWaitNs"`
	FlowsOut      int64 `json:"flowsOut"`

	Checkpoints     int64 `json:"checkpoints"`
	CheckpointNs    int64 `json:"checkpointNs"`
	CheckpointMaxNs int64 `json:"checkpointMaxNs"`
}

// Phases implements PhaseTimer with the coordinator's stage timings,
// so the harness probe and the serve daemon pick cluster phase
// breakdowns up through the same type assertion as the in-process
// engines.
func (c *clusterCore) Phases() PhaseTimes {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.times
}

// SetSpans attaches a span recorder; subsequent rounds record
// coordinator-side loads/decide/commit (and checkpoint) spans into it.
func (c *clusterCore) SetSpans(rec *obs.SpanRecorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = rec
}

// Stats aggregates the cluster-wide telemetry collected so far.
func (c *clusterCore) Stats() ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClusterStats{
		Rounds:          c.times.Rounds,
		Coordinator:     c.times,
		Workers:         append([]WorkerStats(nil), c.wstats...),
		Checkpoints:     c.ckCount,
		CheckpointNs:    c.ckNs,
		CheckpointMaxNs: c.ckMaxNs,
	}
	for s := 0; s < c.p; s++ {
		st.Transport.Add(c.conns[s].Stats())
	}
	for _, ws := range c.wstats {
		st.BarrierWaitNs += ws.BarrierWaitNs
		st.FlowsOut += ws.FlowsOut
	}
	return st
}

// observeStep folds one Step's stage boundaries into the coordinator
// phase times and (when attached) the span recorder. t0..t3 bracket
// the loads, flow-gather, and grant/step-done stages.
func (c *clusterCore) observeStep(t0, t1, t2, t3 time.Time) {
	c.times.Snapshot += t1.Sub(t0)
	c.times.Decide += t2.Sub(t1)
	c.times.Commit += t3.Sub(t2)
	c.times.Rounds++
	if c.spans != nil {
		c.spans.Span(0, 0, "loads", t0, t1.Sub(t0))
		c.spans.Span(0, 0, "decide", t1, t2.Sub(t1))
		c.spans.Span(0, 0, "commit", t2, t3.Sub(t2))
	}
}

// observeCheckpoint records one checkpoint write's duration.
func (c *clusterCore) observeCheckpoint(start time.Time) {
	d := time.Since(start)
	c.ckCount++
	c.ckNs += int64(d)
	if int64(d) > c.ckMaxNs {
		c.ckMaxNs = int64(d)
	}
	if c.spans != nil {
		c.spans.Span(0, 0, "checkpoint", start, d)
	}
}
