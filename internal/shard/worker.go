package shard

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/task"
	"repro/internal/transport"
)

// A cluster worker executes exactly one shard of an instance inside its
// own process, driven frame by frame by the coordinator (cluster.go).
// The worker builds the same engine the in-process path uses —
// Options{Shards: P} with the identical partition — and drives that
// shard's three phases directly, so every decide and commit runs the
// byte-for-byte identical code; only the flow exchange differs, swapped
// behind the Transport interface. State is own-range only: the config
// frame ships just this shard's slice (the rest of the engine's dense
// vectors stays zero/empty), and the per-round load exchange is
// O(cut), not O(n) — own boundary loads out, halo loads back, never
// the full vector. Entries outside the own range and halo are never
// read (LoadView's locality contract), so nothing here holds a full
// copy of the global state.

// workerTransport is the socket-backed Transport of a cluster worker:
// the worker's own published lists are held locally (its intra-shard
// traffic never touches the wire), and the per-source inbound lists are
// loaded from the coordinator's grant frame before each commit.
type workerTransport struct {
	own    int
	lists  [][]transport.Flow  // own published lists, by destination
	wlists [][]transport.WFlow // weighted twin
	in     [][]transport.Flow  // inbound flows, by source shard
	inW    [][]transport.WFlow
}

func (t *workerTransport) PublishFlows(src int, lists [][]transport.Flow)   { t.lists = lists }
func (t *workerTransport) PublishWFlows(src int, lists [][]transport.WFlow) { t.wlists = lists }

func (t *workerTransport) Flows(src, dst int) []transport.Flow {
	if src == t.own {
		return t.lists[dst]
	}
	return t.in[src]
}

func (t *workerTransport) WFlows(src, dst int) []transport.WFlow {
	if src == t.own {
		return t.wlists[dst]
	}
	return t.inW[src]
}

// WorkerOptions carries test hooks for RunWorkerOpts.
type WorkerOptions struct {
	// AfterRound, when non-nil, runs after the worker has completed
	// round r and sent its step-done frame. The kill-and-resume tests
	// use it to crash the process at a chosen round.
	AfterRound func(round uint64)
}

// RunWorker serves one shard over rw until the coordinator sends a done
// frame (returning nil) or the session fails (returning the error,
// after best-effort reporting it to the coordinator as an error frame).
// The caller owns rw and closes it after RunWorker returns.
func RunWorker(rw io.ReadWriter) error {
	return RunWorkerOpts(rw, WorkerOptions{})
}

// RunWorkerOpts is RunWorker with test hooks.
func RunWorkerOpts(rw io.ReadWriter, wo WorkerOptions) error {
	conn := transport.NewConn(rw)
	w, err := newWorker(conn)
	if err != nil {
		conn.WriteError(err.Error())
		return err
	}
	defer w.close()
	if err := w.loop(wo); err != nil {
		conn.WriteError(err.Error())
		return err
	}
	return nil
}

// worker is the per-process shard server state.
type worker struct {
	conn   *transport.Conn
	buf    transport.Buffer
	model  uint8
	own    int
	p      int
	n      int
	lo, hi int
	tr     *workerTransport

	ue *Engine
	we *WeightedEngine

	// Rebuild inputs, retained so a coordinator-materialized state
	// (KindStateLoad) can replace the weighted engine mid-session.
	sys    *core.System
	wproto core.WeightedFlatProtocol
	opts   Options

	// Halo exchange: this shard's boundary and halo vertex lists (both
	// aliases of the partition's sorted storage), the engine's load
	// view, and the gather/scatter staging slices.
	view     LoadView
	boundary []int32
	halo     []int32
	bvals    []float64
	hvals    []float64

	// evbuf stages the event report encoded against the pre-event state,
	// shipped either standalone (KindEventsReport) or piggybacked on the
	// round's boundary-loads frame.
	evbuf transport.Buffer

	scratch []float64 // drain-report / state-gather staging

	// Cumulative telemetry, reported to the coordinator as a KindStats
	// frame piggybacked on every round barrier. Written only between
	// protocol steps; never read by any decide/commit path.
	stats WorkerStats
}

// newWorker reads the config frame, builds the engine it describes and
// acknowledges readiness.
func newWorker(conn *transport.Conn) (*worker, error) {
	kind, payload, err := conn.ReadFrame()
	if err != nil {
		return nil, err
	}
	if kind != transport.KindConfig {
		return nil, fmt.Errorf("shard: worker: expected config frame, got %v", kind)
	}
	var b transport.Buffer
	b.Load(payload)
	cfg, err := decodeConfig(&b)
	if err != nil {
		return nil, err
	}
	csr, err := graph.NewCSR(cfg.CSRName, cfg.N, cfg.Offsets, cfg.Adj)
	if err != nil {
		return nil, fmt.Errorf("shard: worker: rebuild graph: %w", err)
	}
	sys, err := core.NewSystem(csr.Graph(), machine.Speeds(cfg.Speeds), core.WithLambda2(cfg.Lambda2))
	if err != nil {
		return nil, fmt.Errorf("shard: worker: rebuild system: %w", err)
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.P {
		return nil, fmt.Errorf("shard: worker: shard %d of %d", cfg.Shard, cfg.P)
	}
	opts := Options{Shards: cfg.P, Workers: 1, Strategy: Strategy(cfg.Strategy)}
	w := &worker{
		conn:  conn,
		model: cfg.Model,
		own:   cfg.Shard,
		p:     cfg.P,
		n:     cfg.N,
		tr: &workerTransport{
			own: cfg.Shard,
			in:  make([][]transport.Flow, cfg.P),
			inW: make([][]transport.WFlow, cfg.P),
		},
	}
	switch cfg.Model {
	case modelUniform:
		proto, err := uniformProtoFor(cfg.Proto, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		if cfg.Lo < 0 || cfg.Lo+len(cfg.Counts) > cfg.N {
			return nil, fmt.Errorf("shard: worker: own range [%d,%d) outside %d nodes", cfg.Lo, cfg.Lo+len(cfg.Counts), cfg.N)
		}
		counts := make([]int64, cfg.N)
		copy(counts[cfg.Lo:], cfg.Counts)
		e, err := New(sys, proto, counts, opts)
		if err != nil {
			return nil, err
		}
		if e.part.P() != cfg.P {
			e.Close()
			return nil, fmt.Errorf("shard: worker: partition clamps %d shards to %d", cfg.P, e.part.P())
		}
		e.tr = w.tr
		w.ue = e
		w.lo, w.hi = e.part.Range(cfg.Shard)
		w.view = e.view
		w.boundary = e.part.Boundary(cfg.Shard)
		w.halo = e.part.Halo(cfg.Shard)
		if w.lo != cfg.Lo || w.hi-w.lo != len(cfg.Counts) {
			e.Close()
			return nil, fmt.Errorf("shard: worker: config range [%d,%d) does not match partition range [%d,%d)", cfg.Lo, cfg.Lo+len(cfg.Counts), w.lo, w.hi)
		}
	case modelWeighted:
		proto, err := weightedProtoFor(cfg.Proto, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		if cfg.Lo < 0 || cfg.Lo+len(cfg.SegLen) > cfg.N {
			return nil, fmt.Errorf("shard: worker: own range [%d,%d) outside %d nodes", cfg.Lo, cfg.Lo+len(cfg.SegLen), cfg.N)
		}
		perNode, err := expandSegments(cfg.N, cfg.Lo, cfg.SegLen, cfg.Segs)
		if err != nil {
			return nil, err
		}
		e, err := NewWeighted(sys, proto, perNode, opts)
		if err != nil {
			return nil, err
		}
		if e.part.P() != cfg.P {
			e.Close()
			return nil, fmt.Errorf("shard: worker: partition clamps %d shards to %d", cfg.P, e.part.P())
		}
		if cfg.Restored {
			// The checkpointed cached sums drift from the exact folds
			// between periodic recomputes; adopt them bit-for-bit instead
			// of the fresh folds NewWeighted computed.
			if len(cfg.NodeWeight) != len(cfg.SegLen) {
				e.Close()
				return nil, fmt.Errorf("shard: worker: %d restored weight sums for range of %d", len(cfg.NodeWeight), len(cfg.SegLen))
			}
			copy(e.nodeWeight[cfg.Lo:], cfg.NodeWeight)
			for i := range e.sumValid {
				e.sumValid[i] = false
			}
		}
		e.tr = w.tr
		w.we = e
		w.sys = sys
		w.wproto = proto
		w.opts = opts
		w.lo, w.hi = e.part.Range(cfg.Shard)
		w.view = e.view
		w.boundary = e.part.Boundary(cfg.Shard)
		w.halo = e.part.Halo(cfg.Shard)
		if w.lo != cfg.Lo || w.hi-w.lo != len(cfg.SegLen) {
			e.Close()
			return nil, fmt.Errorf("shard: worker: config range [%d,%d) does not match partition range [%d,%d)", cfg.Lo, cfg.Lo+len(cfg.SegLen), w.lo, w.hi)
		}
	default:
		return nil, fmt.Errorf("shard: worker: unknown model %d", cfg.Model)
	}
	if err := conn.WriteFrame(transport.KindVote, nil); err != nil {
		w.close()
		return nil, err
	}
	return w, nil
}

// expandSegments unpacks an own-range (SegLen, Segs) pair into a
// full-length per-node weights slice, empty outside [lo, lo+len(segLen)).
// The returned segments alias segs.
func expandSegments(n, lo int, segLen []int64, segs []float64) ([]task.Weights, error) {
	perNode := make([]task.Weights, n)
	idx := int64(0)
	for k, l := range segLen {
		if l < 0 || idx+l > int64(len(segs)) {
			return nil, fmt.Errorf("shard: worker: segment [%d,%d) outside pool of %d", idx, idx+l, len(segs))
		}
		perNode[lo+k] = task.Weights(segs[idx : idx+l])
		idx += l
	}
	if idx != int64(len(segs)) {
		return nil, fmt.Errorf("shard: worker: %d pool weights beyond the segments", int64(len(segs))-idx)
	}
	return perNode, nil
}

func (w *worker) close() {
	if w.ue != nil {
		w.ue.Close()
	}
	if w.we != nil {
		w.we.Close()
	}
}

// loop serves coordinator frames until done.
func (w *worker) loop(wo WorkerOptions) error {
	for {
		kind, payload, err := w.conn.ReadFrame()
		if err != nil {
			return err
		}
		switch kind {
		case transport.KindRound:
			var r uint64
			if r, err = w.round(payload); err == nil && wo.AfterRound != nil {
				wo.AfterRound(r)
			}
		case transport.KindEvents:
			err = w.events(payload)
		case transport.KindStateLoad:
			err = w.adoptState(payload)
		case transport.KindStateReq:
			w.buf.Reset()
			encodeOwnState(&w.buf, w.model, w.ownState())
			err = w.conn.WriteFrame(transport.KindState, w.buf.B)
		case transport.KindCheckpoint:
			// The payload (the round number) is informational; the reply
			// carries this shard's state for the coordinator to persist.
			w.buf.Reset()
			encodeOwnState(&w.buf, w.model, w.ownState())
			err = w.conn.WriteFrame(transport.KindCheckpointAck, w.buf.B)
		case transport.KindDone:
			return nil
		default:
			return fmt.Errorf("shard: worker: unexpected %v frame", kind)
		}
		if err != nil {
			return err
		}
	}
}

// round executes one protocol round: apply the piggybacked event batch
// (if the round frame carries one), snapshot own loads, trade boundary
// loads for halo loads, decide, ship the outbound cross-shard flows,
// load the grant (move bases, recompute crossing, inbound flows),
// commit, and report step completion (with the fresh own-range sums on
// recompute rounds). The frame sequence is strict alternation with the
// coordinator — read exactly when it writes and vice versa — which
// keeps the lockstep deadlock-free even over unbuffered pipes.
func (w *worker) round(payload []byte) (uint64, error) {
	var b transport.Buffer
	b.Load(payload)
	r, err := b.U64()
	if err != nil {
		return 0, err
	}
	var words [5]uint64
	for i := range words {
		if words[i], err = b.U64(); err != nil {
			return 0, err
		}
	}
	rs := rng.StreamFromWords(words)
	evFlag, err := b.U8()
	if err != nil {
		return 0, err
	}
	w.evbuf.Reset()
	if evFlag != 0 {
		batch, err := decodeEventSlice(&b, w.model, w.n)
		if err != nil {
			return 0, err
		}
		if err := w.applyLocalEvents(batch); err != nil {
			return 0, err
		}
	}

	// Phase 1: boundary loads out (the event report, if any, rides the
	// same frame), halo loads back — O(cut) either way, never the full
	// vector.
	t := time.Now()
	if w.model == modelUniform {
		w.ue.snapshotLoads(w.own)
	} else {
		w.we.snapshotLoads(w.own)
	}
	w.stats.SnapshotNs += int64(time.Since(t))
	w.bvals = w.view.Gather(w.boundary, w.bvals)
	w.buf.Reset()
	w.buf.PutF64s(w.bvals)
	w.buf.B = append(w.buf.B, w.evbuf.B...)
	if err := w.conn.WriteFrame(transport.KindBoundaryLoads, w.buf.B); err != nil {
		return 0, err
	}
	t = time.Now()
	payload, err = w.conn.Expect(transport.KindHaloLoads)
	w.stats.BarrierWaitNs += int64(time.Since(t))
	if err != nil {
		return 0, err
	}
	b.Load(payload)
	hv, err := b.F64s(w.hvals[:0])
	if err != nil {
		return 0, err
	}
	w.hvals = hv
	if len(hv) != len(w.halo) {
		return 0, fmt.Errorf("shard: worker: %d halo loads for %d halo nodes", len(hv), len(w.halo))
	}
	w.view.FillHalo(w.halo, hv)

	// Phase 2: decide own shard, publish locally, ship the cross-shard
	// lists (the own-destination list stays local and never hits the
	// wire — for the weighted model it is the dominant, intra-shard one).
	t = time.Now()
	w.buf.Reset()
	if w.model == modelUniform {
		e := w.ue
		e.decideShard(w.own, rs, e.scratch[0])
		e.tr.PublishFlows(w.own, e.outFlows[w.own])
		w.buf.PutI64(e.moves[w.own])
		w.buf.PutU32(uint32(w.p))
		for d := 0; d < w.p; d++ {
			if d == w.own {
				w.buf.PutFlows(nil)
			} else {
				w.buf.PutFlows(w.tr.lists[d])
				w.stats.FlowsOut += int64(len(w.tr.lists[d]))
			}
		}
	} else {
		e := w.we
		e.decideShard(w.own, rs, e.scratch[0])
		e.tr.PublishWFlows(w.own, e.outFlows[w.own])
		w.buf.PutI64(e.moves[w.own])
		w.buf.PutU32(uint32(w.p))
		for d := 0; d < w.p; d++ {
			if d == w.own {
				w.buf.PutWFlows(nil)
			} else {
				w.buf.PutWFlows(w.tr.wlists[d])
				w.stats.FlowsOut += int64(len(w.tr.wlists[d]))
			}
		}
	}
	w.stats.DecideNs += int64(time.Since(t))
	if err := w.conn.WriteFrame(transport.KindFlows, w.buf.B); err != nil {
		return 0, err
	}

	// Phase 3: grant in, commit, step done.
	t = time.Now()
	payload, err = w.conn.Expect(transport.KindGrant)
	w.stats.BarrierWaitNs += int64(time.Since(t))
	if err != nil {
		return 0, err
	}
	b.Load(payload)
	t = time.Now()
	crossed := false
	if w.model == modelUniform {
		if err := w.loadGrantFlows(&b); err != nil {
			return 0, err
		}
		w.ue.commitShard(w.own)
	} else {
		e := w.we
		sb, err := b.I64s(e.shardBase[:0])
		if err != nil {
			return 0, err
		}
		if len(sb) != w.p {
			return 0, fmt.Errorf("shard: worker: %d move bases for %d shards", len(sb), w.p)
		}
		e.shardBase = sb
		if e.crossAt, err = b.I64(); err != nil {
			return 0, err
		}
		crossed = e.crossAt >= 0
		if err := w.loadGrantWFlows(&b); err != nil {
			return 0, err
		}
		e.commitShard(w.own)
	}
	w.stats.CommitNs += int64(time.Since(t))
	w.buf.Reset()
	if crossed {
		w.buf.PutU8(1)
		w.buf.PutF64s(w.we.freshSum[w.lo:w.hi])
	} else {
		w.buf.PutU8(0)
	}
	if err := w.conn.WriteFrame(transport.KindStepDone, w.buf.B); err != nil {
		return 0, err
	}
	// Piggyback the cumulative telemetry on the round barrier. The
	// coordinator consumes it right after the step-done gather, so the
	// lockstep stays deadlock-free; connection counters are sampled as
	// of the step-done write.
	ws := w.stats
	ws.Conn = w.conn.Stats()
	w.buf.Reset()
	encodeWorkerStats(&w.buf, ws)
	if err := w.conn.WriteFrame(transport.KindStats, w.buf.B); err != nil {
		return 0, err
	}
	return r, nil
}

func (w *worker) loadGrantFlows(b *transport.Buffer) error {
	p, err := b.U32()
	if err != nil {
		return err
	}
	if int(p) != w.p {
		return fmt.Errorf("shard: worker: grant for %d shards, have %d", p, w.p)
	}
	for src := 0; src < w.p; src++ {
		if w.tr.in[src], err = b.Flows(w.tr.in[src][:0]); err != nil {
			return err
		}
	}
	return nil
}

func (w *worker) loadGrantWFlows(b *transport.Buffer) error {
	p, err := b.U32()
	if err != nil {
		return err
	}
	if int(p) != w.p {
		return fmt.Errorf("shard: worker: grant for %d shards, have %d", p, w.p)
	}
	for src := 0; src < w.p; src++ {
		if w.tr.inW[src], err = b.WFlows(w.tr.inW[src][:0]); err != nil {
			return err
		}
	}
	return nil
}

// events applies a standalone pre-round workload batch (KindEvents) to
// the worker's own range and replies with the event report.
func (w *worker) events(payload []byte) error {
	var b transport.Buffer
	b.Load(payload)
	batch, err := decodeEventSlice(&b, w.model, w.n)
	if err != nil {
		return err
	}
	w.evbuf.Reset()
	if err := w.applyLocalEvents(batch); err != nil {
		return err
	}
	return w.conn.WriteFrame(transport.KindEventsReport, w.evbuf.B)
}

// applyLocalEvents applies a workload batch to the worker's own range,
// staging the event report in w.evbuf. For the weighted model the
// report carries, per own node in ascending order, the exact weights
// the drain removes — computed against the pre-event state with
// WeightedState.Drain's clamp-and-truncate rule — so the coordinator
// can replay the global totalW and ledger float64 operation sequence in
// the sequential engine's exact order. The worker's own recompute
// counter is pinned to zero first: the coordinator owns the threshold
// accounting and routes batches that would cross it through the
// materialized state path instead.
func (w *worker) applyLocalEvents(batch *core.EventBatch) error {
	if w.model == modelUniform {
		led, err := w.ue.ApplyEvents(batch)
		if err != nil {
			return err
		}
		w.evbuf.PutI64(led.Arrived)
		w.evbuf.PutI64(led.Departed)
		return nil
	}
	e := w.we
	cnt := uint32(0)
	for i := w.lo; i < w.hi; i++ {
		if e.drainCount(i, batch) > 0 {
			cnt++
		}
	}
	w.evbuf.PutU32(cnt)
	for i := w.lo; i < w.hi; i++ {
		k := e.drainCount(i, batch)
		if k <= 0 {
			continue
		}
		oldCnt := e.nodeCount(i)
		var arr []float64
		if len(batch.WeightArrivals) != 0 {
			arr = batch.WeightArrivals[i]
		}
		seg := e.nodeSegment(i)
		drained := w.scratch[:0]
		for p := oldCnt + int64(len(arr)) - k; p < oldCnt+int64(len(arr)); p++ {
			if p < oldCnt {
				drained = append(drained, seg[p])
			} else {
				drained = append(drained, arr[p-oldCnt])
			}
		}
		w.scratch = drained[:0]
		w.evbuf.PutU32(uint32(i))
		w.evbuf.PutF64s(drained)
	}
	e.sinceRecompute = 0
	_, err := e.ApplyEvents(batch)
	return err
}

// adoptState replaces the weighted engine's own-range state with a
// coordinator-materialized one (the threshold-crossing event path,
// KindStateLoad). The engine is rebuilt from scratch — its segment
// pools cannot shrink in place — and the shipped cached per-node sums
// are adopted bit-for-bit, exactly as a checkpoint restore does.
func (w *worker) adoptState(payload []byte) error {
	if w.model != modelWeighted {
		return fmt.Errorf("shard: worker: state-load frame for the uniform model")
	}
	var b transport.Buffer
	b.Load(payload)
	st, err := decodeOwnState(&b, w.model)
	if err != nil {
		return err
	}
	if len(st.SegLen) != w.hi-w.lo || len(st.NodeWeight) != w.hi-w.lo {
		return fmt.Errorf("shard: worker: state sized %d/%d for range of %d", len(st.SegLen), len(st.NodeWeight), w.hi-w.lo)
	}
	perNode, err := expandSegments(w.n, w.lo, st.SegLen, st.Segs)
	if err != nil {
		return err
	}
	e, err := NewWeighted(w.sys, w.wproto, perNode, w.opts)
	if err != nil {
		return err
	}
	copy(e.nodeWeight[w.lo:w.hi], st.NodeWeight)
	for i := range e.sumValid {
		e.sumValid[i] = false
	}
	e.tr = w.tr
	w.we.Close()
	w.we = e
	w.view = e.view
	w.boundary = e.part.Boundary(w.own)
	w.halo = e.part.Halo(w.own)
	return w.conn.WriteFrame(transport.KindEventsDone, nil)
}

// ownState snapshots the worker's own index range for state gathers and
// checkpoints.
func (w *worker) ownState() *ownState {
	if w.model == modelUniform {
		return &ownState{Counts: w.ue.counts[w.lo:w.hi]}
	}
	e := w.we
	segs := w.scratch[:0]
	for k := 0; k < w.hi-w.lo; k++ {
		segs = append(segs, e.seg(w.own, k)...)
	}
	w.scratch = segs[:0]
	return &ownState{
		SegLen:     e.segLen[w.own],
		Segs:       segs,
		NodeWeight: e.nodeWeight[w.lo:w.hi],
	}
}

// uniformProtoFor resolves a wire protocol name for the uniform model.
func uniformProtoFor(name string, alpha float64) (core.UniformNodeProtocol, error) {
	if name == "algorithm1" {
		return core.Algorithm1{Alpha: alpha}, nil
	}
	return nil, fmt.Errorf("shard: worker: unknown uniform protocol %q", name)
}

// weightedProtoFor resolves a wire protocol name for the weighted model.
func weightedProtoFor(name string, alpha float64) (core.WeightedFlatProtocol, error) {
	if name == "algorithm2" {
		return core.Algorithm2{Alpha: alpha}, nil
	}
	return nil, fmt.Errorf("shard: worker: unknown weighted protocol %q", name)
}
