// Cluster telemetry tests: the KindStats frames every worker piggybacks
// on the round barrier must reach the coordinator's aggregate, the
// coordinator must time its own stages (and implement PhaseTimer), the
// span recorder must capture per-round stage spans, and checkpoint
// writes must be counted — all without perturbing the parity suites,
// which run in this same package with the exchange permanently on.
package shard_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/shard"
)

func TestClusterStats(t *testing.T) {
	class := experiments.Table1Classes()[0]
	sys, counts := buildInstance(t, class, 16)
	cl, err := shard.StartLocalUniformCluster(sys, core.Algorithm1{}, counts, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rec := obs.NewSpanRecorder(0)
	cl.SetSpans(rec)

	dir := t.TempDir()
	ckPath := filepath.Join(dir, "stats.ckpt")
	const rounds = 12
	res, err := cl.Drive(core.RunOpts{MaxRounds: rounds, Seed: 21}, shard.CheckpointConfig{Path: ckPath, Every: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != rounds {
		t.Fatalf("drive ran %d rounds, want %d", res.Rounds, rounds)
	}

	st := cl.Stats()
	if st.Rounds != rounds {
		t.Fatalf("stats report %d rounds, want %d", st.Rounds, rounds)
	}
	if ph := cl.Phases(); ph.Rounds != rounds || ph.Total() <= 0 {
		t.Fatalf("coordinator phases %+v, want %d timed rounds", ph, rounds)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("stats carry %d workers, want 2", len(st.Workers))
	}
	for s, ws := range st.Workers {
		if ws.Conn.FramesSent == 0 || ws.Conn.FramesRecv == 0 {
			t.Fatalf("worker %d reported no transport traffic: %+v", s, ws)
		}
		if ws.SnapshotNs < 0 || ws.DecideNs < 0 || ws.CommitNs < 0 || ws.BarrierWaitNs < 0 || ws.FlowsOut < 0 {
			t.Fatalf("worker %d reported negative telemetry: %+v", s, ws)
		}
	}
	// The two-corner start pushes load across the shard boundary, so
	// cross-shard flow records must have been shipped.
	if st.FlowsOut == 0 {
		t.Fatal("no cross-shard flows recorded on an adversarial two-corner start")
	}
	if st.Transport.FramesSent == 0 || st.Transport.BytesRecv == 0 {
		t.Fatalf("coordinator transport counters empty: %+v", st.Transport)
	}
	if st.Checkpoints != 2 {
		t.Fatalf("stats count %d checkpoints, want 2 (every 5 of %d rounds)", st.Checkpoints, rounds)
	}
	if st.CheckpointNs <= 0 || st.CheckpointMaxNs <= 0 || st.CheckpointMaxNs > st.CheckpointNs {
		t.Fatalf("checkpoint durations inconsistent: total=%d max=%d", st.CheckpointNs, st.CheckpointMaxNs)
	}

	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	var sb strings.Builder
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	for _, want := range []string{`"name":"loads"`, `"name":"decide"`, `"name":"commit"`, `"name":"checkpoint"`} {
		if !strings.Contains(trace, want) {
			t.Fatalf("trace missing %s span", want)
		}
	}
}

// TestEngineTelemetry covers the in-process engines' counters: the
// cross-shard flow tally must move on an adversarial start, and the
// weighted arena occupancy must account for the carved segments.
func TestEngineTelemetry(t *testing.T) {
	class := experiments.Table1Classes()[0]
	sys, counts := buildInstance(t, class, 16)
	eng, err := shard.New(sys, core.Algorithm1{}, counts, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := core.Drive[*core.UniformState](eng, nil, core.RunOpts{MaxRounds: 10, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if eng.CrossFlows() == 0 {
		t.Fatal("uniform engine recorded no cross-shard flows on a two-corner start")
	}

	wsys, perNode := buildWeighted(t, class, 16, 8)
	weng, err := shard.NewWeighted(wsys, core.Algorithm2{}, perNode, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer weng.Close()
	if _, err := core.Drive[*core.WeightedState](weng, nil, core.RunOpts{MaxRounds: 10, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if weng.CrossFlows() == 0 {
		t.Fatal("weighted engine recorded no cross-shard flows on an all-on-one start")
	}
	ar := weng.Arena()
	if ar.CurBytes <= 0 {
		t.Fatalf("arena reports no active blocks after 10 rounds: %+v", ar)
	}
	if ar.RetiredBytes < 0 || ar.DeadFloats < 0 {
		t.Fatalf("arena occupancy negative: %+v", ar)
	}
}
