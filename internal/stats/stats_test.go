package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean %g, want 5", w.Mean())
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance %g, want %g", w.Variance(), 32.0/7)
	}
	if w.StdErr() <= 0 {
		t.Error("non-positive stderr")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		stream := rng.New(seed)
		n := 2 + stream.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = stream.NormFloat64() * 10
			w.Add(xs[i])
		}
		mean := Mean(xs)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-naiveVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("empty sample: %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q > 1 accepted")
	}
}

func TestBootstrapCI(t *testing.T) {
	stream := rng.New(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + stream.NormFloat64()
	}
	lo, hi, err := BootstrapMeanCI(xs, 0.95, 2000, stream)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%g,%g]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%g,%g] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI [%g,%g] implausibly wide", lo, hi)
	}
	if _, _, err := BootstrapMeanCI(xs[:1], 0.95, 100, stream); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("single sample: %v", err)
	}
	if _, _, err := BootstrapMeanCI(xs, 1.5, 100, stream); err == nil {
		t.Error("level > 1 accepted")
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R² = %g, want 1", fit.R2)
	}
}

func TestFitLinearValidation(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("single point: %v", err)
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 5·x³.
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 5 * math.Pow(x[i], 3)
	}
	exp, coeff, r2, err := FitPowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp-3) > 1e-9 || math.Abs(coeff-5) > 1e-9 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("exp=%g coeff=%g R²=%g", exp, coeff, r2)
	}
}

func TestFitPowerLawRejectsNonPositive(t *testing.T) {
	if _, _, _, err := FitPowerLaw([]float64{1, 2}, []float64{0, 3}); err == nil {
		t.Error("zero y accepted")
	}
	if _, _, _, err := FitPowerLaw([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("single point: %v", err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}
