// Package stats provides the statistics used by the experiment harness:
// streaming moments (Welford), quantiles, simple bootstrap confidence
// intervals, and ordinary least squares — including the log–log
// regression used to extract empirical scaling exponents from
// convergence-time sweeps.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// ErrInsufficientData is returned when an estimator needs more samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Mean returns the mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted sample.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using
// resamples drawn from stream.
func BootstrapMeanCI(xs []float64, level float64, resamples int, stream *rng.Stream) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %g outside (0,1)", level)
	}
	if resamples <= 0 {
		resamples = 1000
	}
	means := make([]float64, resamples)
	for r := range means {
		s := 0.0
		for i := 0; i < len(xs); i++ {
			s += xs[stream.Intn(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	alpha := (1 - level) / 2
	lo, err = Quantile(means, alpha)
	if err != nil {
		return 0, 0, err
	}
	hi, err = Quantile(means, 1-alpha)
	return lo, hi, err
}

// LinearFit is an ordinary least squares fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitLinear performs OLS on (x, y) pairs.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	n := float64(len(x))
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	_ = n
	return fit, nil
}

// FitPowerLaw fits y ≈ C·x^Exponent by OLS in log–log space. All inputs
// must be positive.
func FitPowerLaw(x, y []float64) (exponent, coeff, r2 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, ErrInsufficientData
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: power-law fit requires positive data, got (%g,%g)", x[i], y[i])
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	fit, err := FitLinear(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit.R2, nil
}
