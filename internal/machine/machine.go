// Package machine models the processors: speed vectors, their generators,
// the aggregate quantities the analysis uses (s_max, s_min, S = Σs_i,
// arithmetic and harmonic means), and the speed granularity ε̄ of
// Lemma 3.21 (the largest value such that every speed is an integer
// multiple of it), which controls the exact-Nash convergence bound of
// Theorem 1.2.
package machine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrNoMachines is returned when an empty speed vector is supplied.
var ErrNoMachines = errors.New("machine: need at least one machine")

// Speeds is a vector of processor speeds. The paper scales speeds so that
// the smallest speed is 1; Validate enforces s_min = 1 within tolerance.
type Speeds []float64

// Uniform returns n machines of speed 1.
func Uniform(n int) Speeds {
	s := make(Speeds, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// TwoClass returns n machines where a fraction fastFrac (rounded down, at
// least one machine if fastFrac > 0) has speed fast and the rest speed 1.
// Fast machines occupy the lowest indices.
func TwoClass(n int, fastFrac, fast float64) (Speeds, error) {
	if n <= 0 {
		return nil, ErrNoMachines
	}
	if fast < 1 {
		return nil, fmt.Errorf("machine: fast speed must be >= 1, got %g", fast)
	}
	if fastFrac < 0 || fastFrac > 1 {
		return nil, fmt.Errorf("machine: fastFrac must be in [0,1], got %g", fastFrac)
	}
	k := int(fastFrac * float64(n))
	if fastFrac > 0 && k == 0 {
		k = 1
	}
	s := Uniform(n)
	for i := 0; i < k; i++ {
		s[i] = fast
	}
	return s, nil
}

// PowersOfTwo returns n machines with speeds cycling through
// 1, 2, 4, ..., 2^(levels-1). Integer speeds, so granularity ε̄ = 1.
func PowersOfTwo(n, levels int) (Speeds, error) {
	if n <= 0 {
		return nil, ErrNoMachines
	}
	if levels < 1 || levels > 30 {
		return nil, fmt.Errorf("machine: levels must be in [1,30], got %d", levels)
	}
	s := make(Speeds, n)
	for i := range s {
		s[i] = float64(int(1) << uint(i%levels))
	}
	return s, nil
}

// RandomIntegers returns n machines with speeds drawn uniformly from
// {1, ..., maxSpeed}; granularity ε̄ = 1. At least one machine is pinned
// to speed 1 so that s_min = 1 exactly.
func RandomIntegers(n, maxSpeed int, stream *rng.Stream) (Speeds, error) {
	if n <= 0 {
		return nil, ErrNoMachines
	}
	if maxSpeed < 1 {
		return nil, fmt.Errorf("machine: maxSpeed must be >= 1, got %d", maxSpeed)
	}
	s := make(Speeds, n)
	for i := range s {
		s[i] = float64(1 + stream.Intn(maxSpeed))
	}
	s[stream.Intn(n)] = 1
	return s, nil
}

// Granular returns n machines whose speeds are random integer multiples
// of eps in [1, maxSpeed], so the granularity is (a divisor multiple of)
// eps. eps must divide 1 exactly in floating point (e.g. 0.5, 0.25).
func Granular(n int, eps, maxSpeed float64, stream *rng.Stream) (Speeds, error) {
	if n <= 0 {
		return nil, ErrNoMachines
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("machine: eps must be in (0,1], got %g", eps)
	}
	if maxSpeed < 1 {
		return nil, fmt.Errorf("machine: maxSpeed must be >= 1, got %g", maxSpeed)
	}
	lo := int(math.Round(1 / eps))
	hi := int(math.Floor(maxSpeed / eps))
	if hi < lo {
		hi = lo
	}
	s := make(Speeds, n)
	for i := range s {
		s[i] = float64(lo+stream.Intn(hi-lo+1)) * eps
	}
	s[stream.Intn(n)] = 1
	return s, nil
}

// Validate checks that the vector is non-empty, strictly positive, and
// scaled to s_min = 1 (within 1e-9).
func (s Speeds) Validate() error {
	if len(s) == 0 {
		return ErrNoMachines
	}
	min := math.Inf(1)
	for i, v := range s {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("machine: invalid speed %g at machine %d", v, i)
		}
		if v < min {
			min = v
		}
	}
	if math.Abs(min-1) > 1e-9 {
		return fmt.Errorf("machine: speeds must be scaled so s_min = 1, got s_min = %g", min)
	}
	return nil
}

// Rescale returns a copy scaled so that s_min = 1.
func (s Speeds) Rescale() Speeds {
	out := make(Speeds, len(s))
	min := math.Inf(1)
	for _, v := range s {
		if v < min {
			min = v
		}
	}
	for i, v := range s {
		out[i] = v / min
	}
	return out
}

// Max returns s_max.
func (s Speeds) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns s_min.
func (s Speeds) Min() float64 {
	m := math.Inf(1)
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

// Sum returns S = Σᵢ sᵢ, the total capacity.
func (s Speeds) Sum() float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

// ArithmeticMean returns s̄_a = S/n.
func (s Speeds) ArithmeticMean() float64 {
	return s.Sum() / float64(len(s))
}

// HarmonicMean returns s̄_h = n / Σ 1/sᵢ.
func (s Speeds) HarmonicMean() float64 {
	inv := 0.0
	for _, v := range s {
		inv += 1 / v
	}
	return float64(len(s)) / inv
}

// Granularity returns the largest ε̄ such that every speed is an integer
// multiple of ε̄ within tol, computed by a floating-point GCD. Returns an
// error if the speeds do not admit a common factor above minEps = 1e-6
// (e.g. irrational ratios), in which case Theorem 1.2 gives no finite
// bound and the caller should treat the configuration as approximate-only.
func (s Speeds) Granularity(tol float64) (float64, error) {
	const minEps = 1e-6
	if len(s) == 0 {
		return 0, ErrNoMachines
	}
	if tol <= 0 {
		tol = 1e-9
	}
	g := s[0]
	for _, v := range s[1:] {
		g = floatGCD(g, v, tol)
		if g < minEps {
			return 0, fmt.Errorf("machine: no common speed granularity above %g", minEps)
		}
	}
	return g, nil
}

// floatGCD computes a GCD of two positive floats via the Euclidean
// algorithm with tolerance.
func floatGCD(a, b, tol float64) float64 {
	for b > tol {
		a, b = b, math.Mod(a, b)
		if b < tol && b > 0 {
			// Treat near-zero remainders (within tol) as exact division.
			b = 0
		}
	}
	return a
}
