package machine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestUniform(t *testing.T) {
	s := Uniform(5)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	for _, v := range s {
		if v != 1 {
			t.Fatalf("speed %g", v)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoClass(t *testing.T) {
	s, err := TwoClass(10, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	fast := 0
	for _, v := range s {
		if v == 4 {
			fast++
		} else if v != 1 {
			t.Fatalf("unexpected speed %g", v)
		}
	}
	if fast != 3 {
		t.Errorf("fast machines %d, want 3", fast)
	}
	// fastFrac > 0 guarantees at least one fast machine.
	s2, err := TwoClass(10, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Max() != 2 {
		t.Error("tiny fastFrac yielded no fast machine")
	}
	if _, err := TwoClass(0, 0.5, 2); !errors.Is(err, ErrNoMachines) {
		t.Errorf("want ErrNoMachines, got %v", err)
	}
	if _, err := TwoClass(5, 0.5, 0.5); err == nil {
		t.Error("fast < 1 accepted")
	}
	if _, err := TwoClass(5, 1.5, 2); err == nil {
		t.Error("fastFrac > 1 accepted")
	}
}

func TestPowersOfTwo(t *testing.T) {
	s, err := PowersOfTwo(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := Speeds{1, 2, 4, 1, 2, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("speeds %v, want %v", s, want)
		}
	}
	eps, err := s.Granularity(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1 {
		t.Errorf("granularity %g, want 1", eps)
	}
}

func TestRandomIntegers(t *testing.T) {
	s, err := RandomIntegers(50, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v != math.Trunc(v) || v < 1 || v > 4 {
			t.Fatalf("speed %g outside integer range [1,4]", v)
		}
	}
	if s.Min() != 1 {
		t.Error("no machine pinned to speed 1")
	}
}

func TestGranular(t *testing.T) {
	s, err := Granular(40, 0.25, 3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	eps, err := s.Granularity(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Granularity must be a multiple of 0.25 that divides all speeds —
	// i.e. at least 0.25 and of the form k·0.25.
	if eps < 0.25-1e-9 {
		t.Errorf("granularity %g below 0.25", eps)
	}
	if r := math.Mod(eps+1e-12, 0.25); r > 1e-9 && 0.25-r > 1e-9 {
		t.Errorf("granularity %g not a multiple of 0.25", eps)
	}
}

func TestValidateRejectsUnscaled(t *testing.T) {
	if err := (Speeds{2, 3}).Validate(); err == nil {
		t.Error("unscaled speeds accepted")
	}
	if err := (Speeds{1, -2}).Validate(); err == nil {
		t.Error("negative speed accepted")
	}
	if err := (Speeds{1, math.NaN()}).Validate(); err == nil {
		t.Error("NaN speed accepted")
	}
	if err := (Speeds{}).Validate(); !errors.Is(err, ErrNoMachines) {
		t.Errorf("want ErrNoMachines, got %v", err)
	}
}

func TestRescale(t *testing.T) {
	s := Speeds{2, 4, 6}
	r := s.Rescale()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 || r[1] != 2 || r[2] != 3 {
		t.Errorf("rescaled %v", r)
	}
	if s[0] != 2 {
		t.Error("Rescale modified the receiver")
	}
}

func TestAggregates(t *testing.T) {
	s := Speeds{1, 2, 4}
	if s.Max() != 4 || s.Min() != 1 || s.Sum() != 7 {
		t.Errorf("max/min/sum = %g/%g/%g", s.Max(), s.Min(), s.Sum())
	}
	if got := s.ArithmeticMean(); math.Abs(got-7.0/3) > 1e-12 {
		t.Errorf("arithmetic mean %g", got)
	}
	wantH := 3 / (1 + 0.5 + 0.25)
	if got := s.HarmonicMean(); math.Abs(got-wantH) > 1e-12 {
		t.Errorf("harmonic mean %g, want %g", got, wantH)
	}
}

func TestHarmonicLeqArithmetic(t *testing.T) {
	// Property: harmonic mean ≤ arithmetic mean (AM–HM inequality),
	// which the paper's Ψ₁ shift n/4·(1/s̄_h − 1/s̄_a) ≥ ... relies on.
	f := func(seed uint64) bool {
		s, err := RandomIntegers(10, 6, rng.New(seed))
		if err != nil {
			return false
		}
		return s.HarmonicMean() <= s.ArithmeticMean()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGranularityIntegers(t *testing.T) {
	s := Speeds{1, 3, 7}
	eps, err := s.Granularity(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1 {
		t.Errorf("granularity %g, want 1", eps)
	}
}

func TestGranularityHalves(t *testing.T) {
	s := Speeds{1, 1.5, 2.5}
	eps, err := s.Granularity(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-0.5) > 1e-9 {
		t.Errorf("granularity %g, want 0.5", eps)
	}
}

func TestGranularityIrrational(t *testing.T) {
	s := Speeds{1, math.Sqrt2}
	if _, err := s.Granularity(1e-12); err == nil {
		t.Error("irrational speed ratio admitted a granularity")
	}
}
