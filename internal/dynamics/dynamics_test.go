package dynamics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/task"
)

// families enumerates the graph builders the invariant tests sweep;
// they cover every degree profile the rewiring has to survive (constant
// degree, star hubs, trees, irregular random graphs).
var families = []struct {
	name  string
	build func(n int, stream *rng.Stream) (*graph.Graph, error)
}{
	{"complete", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.Complete(n) }},
	{"ring", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.Ring(n) }},
	{"path", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.Path(n) }},
	{"torus", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.Torus(4, (n+3)/4) }},
	{"hypercube", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.Hypercube(4) }},
	{"star", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.Star(n) }},
	{"tree", func(n int, _ *rng.Stream) (*graph.Graph, error) { return graph.BinaryTree(n) }},
	{"regular", func(n int, stream *rng.Stream) (*graph.Graph, error) { return graph.RandomRegular(n, 4, stream) }},
}

func buildSystem(t *testing.T, fam int, n int, stream *rng.Stream) *core.System {
	t.Helper()
	f := families[fam%len(families)]
	g, err := f.build(n, stream)
	if err != nil {
		t.Fatalf("%s(%d): %v", f.name, n, err)
	}
	speeds, err := machine.TwoClass(g.N(), 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, speeds)
	if err != nil {
		t.Fatalf("%s: %v", f.name, err)
	}
	return sys
}

// randomWorkload derives workload parameters from a seed.
func randomWorkload(seed uint64) Workload {
	s := rng.New(seed)
	w := Workload{
		Seed:        s.Uint64(),
		ArrivalRate: 8 * s.Float64(),
		ServiceRate: 0.8 * s.Float64(),
	}
	if s.Bernoulli(0.5) {
		w.BurstEvery = 2 + s.Intn(6)
		w.BurstSize = int64(1 + s.Intn(40))
	}
	return w
}

// TestUniformConservationModuloLedger: on every family, a random event
// sequence interleaved with protocol rounds preserves the task count
// net of the applied ledger, exactly.
func TestUniformConservationModuloLedger(t *testing.T) {
	for fam := range families {
		fam := fam
		t.Run(families[fam].name, func(t *testing.T) {
			t.Parallel()
			f := func(seed uint64) bool {
				stream := rng.New(seed)
				sys := buildSystem(t, fam, 12+stream.Intn(8), stream.Split(1))
				m := int64(20 * sys.N())
				counts := make([]int64, sys.N())
				counts[0] = m
				st, err := core.NewUniformState(sys, counts)
				if err != nil {
					t.Fatal(err)
				}
				w := randomWorkload(seed)
				events := func(r uint64) *core.EventBatch { return w.UniformEvents(sys, r) }
				res, err := core.RunUniform(st, core.Algorithm1{}, nil, core.RunOpts{
					MaxRounds: 25, Seed: seed ^ 0xabc, Events: events,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Exact integer conservation: final = initial + A − D.
				if st.Total() != m+res.Ledger.Arrived-res.Ledger.Departed {
					t.Logf("total %d, initial %d, ledger %+v", st.Total(), m, res.Ledger)
					return false
				}
				// The state's cached total must agree with the counts.
				sum := int64(0)
				for i := 0; i < sys.N(); i++ {
					if st.Count(i) < 0 {
						t.Logf("negative count at %d", i)
						return false
					}
					sum += st.Count(i)
				}
				return sum == st.Total()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestWeightedConservationModuloLedger: the weighted analogue — task
// count conserves exactly, total weight up to FP summation error.
func TestWeightedConservationModuloLedger(t *testing.T) {
	for fam := range families {
		fam := fam
		t.Run(families[fam].name, func(t *testing.T) {
			t.Parallel()
			f := func(seed uint64) bool {
				stream := rng.New(seed)
				sys := buildSystem(t, fam, 12+stream.Intn(8), stream.Split(1))
				weights, err := task.RandomWeights(15*sys.N(), 0.1, 1, stream.Split(2))
				if err != nil {
					t.Fatal(err)
				}
				perNode := make([]task.Weights, sys.N())
				perNode[0] = weights
				st, err := core.NewWeightedState(sys, perNode)
				if err != nil {
					t.Fatal(err)
				}
				m0, w0 := st.TaskCount(), st.TotalWeight()
				w := randomWorkload(seed)
				events := func(r uint64) *core.EventBatch { return w.WeightedEvents(sys, r) }
				res, err := core.RunWeighted(st, core.Algorithm2{}, nil, core.RunOpts{
					MaxRounds: 25, Seed: seed ^ 0xdef, Events: events,
				})
				if err != nil {
					t.Fatal(err)
				}
				if int64(st.TaskCount()) != int64(m0)+res.Ledger.ArrivedTasks-res.Ledger.DepartedTasks {
					t.Logf("count %d, initial %d, ledger %+v", st.TaskCount(), m0, res.Ledger)
					return false
				}
				want := w0 + res.Ledger.ArrivedWeight - res.Ledger.DepartedWeight
				if math.Abs(st.TotalWeight()-want) > 1e-6*(1+math.Abs(want)) {
					t.Logf("weight %g, want %g", st.TotalWeight(), want)
					return false
				}
				// Cross-check the cached totals against a full recompute.
				clone := st.Clone()
				clone.RecomputeWeights()
				return math.Abs(clone.TotalWeight()-st.TotalWeight()) < 1e-6*(1+math.Abs(want))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChurnUniformConservation: leave and join events preserve the task
// count exactly and keep the network connected, on every family.
func TestChurnUniformConservation(t *testing.T) {
	for fam := range families {
		fam := fam
		t.Run(families[fam].name, func(t *testing.T) {
			t.Parallel()
			f := func(seed uint64) bool {
				stream := rng.New(seed)
				sys := buildSystem(t, fam, 12+stream.Intn(8), stream.Split(1))
				counts := make([]int64, sys.N())
				total := int64(0)
				for i := range counts {
					counts[i] = int64(stream.Intn(30))
					total += counts[i]
				}
				// A random alternating sequence of churn events.
				for step := 0; step < 6; step++ {
					kind := ChurnLeave
					if stream.Bernoulli(0.5) {
						kind = ChurnJoin
					}
					ev := ChurnEvent{Round: step + 1, Kind: kind, Node: -1, Degree: 1 + stream.Intn(3)}
					nsys, ncounts, err := ApplyChurnUniform(sys, counts, ev, seed+uint64(step))
					if err != nil {
						t.Fatal(err)
					}
					sys, counts = nsys, ncounts
					sum := int64(0)
					for i, c := range counts {
						if c < 0 {
							t.Logf("negative count at %d after %s", i, kind)
							return false
						}
						sum += c
					}
					if sum != total {
						t.Logf("after %s: sum %d, want %d", kind, sum, total)
						return false
					}
					if !sys.Graph().IsConnected() {
						t.Logf("after %s: disconnected", kind)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChurnWeightedConservation: the weighted churn path preserves the
// task multiset cardinality exactly and the weight up to FP error.
func TestChurnWeightedConservation(t *testing.T) {
	seeds := []uint64{1, 17, 9000}
	for fam := range families {
		fam := fam
		t.Run(families[fam].name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				stream := rng.New(seed)
				sys := buildSystem(t, fam, 12+stream.Intn(8), stream.Split(1))
				weights, err := task.RandomWeights(10*sys.N(), 0.1, 1, stream.Split(2))
				if err != nil {
					t.Fatal(err)
				}
				perNode := make([]task.Weights, sys.N())
				perNode[0] = weights
				st, err := core.NewWeightedState(sys, perNode)
				if err != nil {
					t.Fatal(err)
				}
				count, weight := st.TaskCount(), st.TotalWeight()
				for step := 0; step < 5; step++ {
					kind := ChurnLeave
					if stream.Bernoulli(0.5) {
						kind = ChurnJoin
					}
					ev := ChurnEvent{Round: step + 1, Kind: kind, Node: -1, Degree: 2}
					sys, st, err = ApplyChurnWeighted(sys, st, ev, seed+uint64(step))
					if err != nil {
						t.Fatal(err)
					}
					if st.TaskCount() != count {
						t.Fatalf("seed %d after %s: count %d, want %d", seed, kind, st.TaskCount(), count)
					}
					if math.Abs(st.TotalWeight()-weight) > 1e-9*(1+weight) {
						t.Fatalf("seed %d after %s: weight %g, want %g", seed, kind, st.TotalWeight(), weight)
					}
				}
			}
		})
	}
}

// TestChurnLeaveRewiresConnectivity: removing any single node from any
// family instance keeps the survivors connected (the victim's neighbors
// are rewired into a path).
func TestChurnLeaveRewiresConnectivity(t *testing.T) {
	for fam := range families {
		sys := buildSystem(t, fam, 14, rng.New(3))
		for victim := 0; victim < sys.N(); victim++ {
			counts := make([]int64, sys.N())
			counts[victim] = 5 // force rehoming through the victim
			ev := ChurnEvent{Round: 1, Kind: ChurnLeave, Node: victim}
			nsys, ncounts, err := ApplyChurnUniform(sys, counts, ev, 1)
			if err != nil {
				t.Fatalf("%s victim %d: %v", families[fam].name, victim, err)
			}
			if !nsys.Graph().IsConnected() {
				t.Fatalf("%s: removing %d disconnected the graph", families[fam].name, victim)
			}
			sum := int64(0)
			for _, c := range ncounts {
				sum += c
			}
			if sum != 5 {
				t.Fatalf("%s victim %d: tasks lost (%d)", families[fam].name, victim, sum)
			}
		}
	}
}

// TestChurnErrors covers the rejection paths.
func TestChurnErrors(t *testing.T) {
	g, err := graph.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, machine.Uniform(3))
	if err != nil {
		t.Fatal(err)
	}
	// Leaving a 3-node ring is allowed; leaving a 2-node network is not.
	nsys, counts, err := ApplyChurnUniform(sys, []int64{1, 1, 1}, ChurnEvent{Round: 1, Kind: ChurnLeave, Node: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nsys.N() != 2 {
		t.Fatalf("n = %d, want 2", nsys.N())
	}
	if _, _, err := ApplyChurnUniform(nsys, counts, ChurnEvent{Round: 2, Kind: ChurnLeave, Node: 0}, 1); err == nil {
		t.Error("leave from a 2-node network accepted")
	}
	if _, _, err := ApplyChurnUniform(sys, []int64{1, 1}, ChurnEvent{Round: 1, Kind: ChurnLeave}, 1); err == nil {
		t.Error("count/size mismatch accepted")
	}
	if _, _, err := ApplyChurnUniform(sys, []int64{1, 1, 1}, ChurnEvent{Round: 1, Kind: ChurnLeave, Node: 9}, 1); err == nil {
		t.Error("out-of-range victim accepted")
	}
}

// TestWorkloadPurity: the event stream is a pure function of
// (seed, round) — recomputing any round yields the identical batch,
// independent of evaluation order.
func TestWorkloadPurity(t *testing.T) {
	sys := buildSystem(t, 1, 12, rng.New(1))
	w := Workload{Seed: 9, ArrivalRate: 5, ServiceRate: 0.4, BurstEvery: 3, BurstSize: 11}
	forward := make([]*core.EventBatch, 20)
	for r := 1; r < 20; r++ {
		forward[r] = w.UniformEvents(sys, uint64(r))
	}
	for r := 19; r >= 1; r-- {
		again := w.UniformEvents(sys, uint64(r))
		a, b := forward[r], again
		if (a == nil) != (b == nil) {
			t.Fatalf("round %d: nil-ness differs", r)
		}
		if a == nil {
			continue
		}
		for i := range a.Arrivals {
			if a.Arrivals[i] != b.Arrivals[i] {
				t.Fatalf("round %d node %d: arrivals %d != %d", r, i, a.Arrivals[i], b.Arrivals[i])
			}
		}
		for i := range a.Departures {
			if a.Departures[i] != b.Departures[i] {
				t.Fatalf("round %d node %d: departures %d != %d", r, i, a.Departures[i], b.Departures[i])
			}
		}
	}
}

// TestWorkloadValidate covers parameter validation.
func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{}).Validate(); err != nil {
		t.Errorf("zero workload rejected: %v", err)
	}
	if err := (Workload{ArrivalRate: -1}).Validate(); err == nil {
		t.Error("negative arrival rate accepted")
	}
	if err := (Workload{MinWeight: 0.5, MaxWeight: 0.2}).Validate(); err == nil {
		t.Error("inverted weight bounds accepted")
	}
	if err := (Workload{MaxWeight: 2}).Validate(); err == nil {
		t.Error("overweight tasks accepted")
	}
	if !(Workload{}).IsZero() {
		t.Error("zero workload not IsZero")
	}
	if (Workload{ArrivalRate: 1}).IsZero() {
		t.Error("arrival workload reported zero")
	}
}

// TestAlternatingChurn pins the plan shape.
func TestAlternatingChurn(t *testing.T) {
	plan := AlternatingChurn(100, 30)
	if len(plan) != 3 {
		t.Fatalf("%d events, want 3", len(plan))
	}
	wantRounds := []int{30, 60, 90}
	wantKinds := []ChurnKind{ChurnLeave, ChurnJoin, ChurnLeave}
	for i, ev := range plan {
		if ev.Round != wantRounds[i] || ev.Kind != wantKinds[i] {
			t.Errorf("event %d: %+v, want round %d kind %v", i, ev, wantRounds[i], wantKinds[i])
		}
	}
	if AlternatingChurn(100, 0) != nil {
		t.Error("every=0 produced a plan")
	}
}

// TestChurnSeqDecorrelates: two events at the same round with distinct
// Seq draw from independent streams (the harness numbers same-round
// events by position), so stacked same-round churn is not correlated.
func TestChurnSeqDecorrelates(t *testing.T) {
	sys := buildSystem(t, 0, 16, rng.New(2)) // complete graph, any victim valid
	// Probe the victim choice directly through the stream contract:
	// distinct Seq must not yield the identical draw sequence.
	same := 0
	for trial := 0; trial < 32; trial++ {
		a := churnStream(uint64(trial), 9, 0).Intn(sys.N())
		b := churnStream(uint64(trial), 9, 1).Intn(sys.N())
		if a == b {
			same++
		}
	}
	if same == 32 {
		t.Fatal("Seq does not decorrelate same-round churn streams")
	}
}
