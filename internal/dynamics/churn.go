package dynamics

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/task"
)

// ChurnKind distinguishes node departures from node joins.
type ChurnKind uint8

const (
	// ChurnLeave removes a node: its tasks are rehomed to its neighbors
	// round-robin and the neighbors are rewired into a path so the
	// network stays connected.
	ChurnLeave ChurnKind = iota
	// ChurnJoin appends a fresh empty node wired to Degree existing
	// nodes chosen uniformly at random.
	ChurnJoin
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	if k == ChurnJoin {
		return "join"
	}
	return "leave"
}

// ChurnEvent is one topology change, applied before the protocol round
// Round (the event's randomness — victim choice, attachment points — is
// keyed by Round, so the schedule is replayable).
type ChurnEvent struct {
	// Round is the global round before which the event applies (≥ 1).
	Round int
	Kind  ChurnKind
	// Node is the departing node for ChurnLeave, or -1 for a uniformly
	// random victim. Ignored for ChurnJoin.
	Node int
	// Degree is the joining node's edge count (default 2, clamped to the
	// current size). Ignored for ChurnLeave.
	Degree int
	// Speed is the joining node's speed (default 1). Ignored for
	// ChurnLeave.
	Speed float64
	// Seq disambiguates multiple events scheduled at the same round:
	// each (Round, Seq) pair gets an independent stream, so same-round
	// events draw uncorrelated victims/attachment points. The harness
	// numbers same-round events by plan position automatically.
	Seq int
}

// AlternatingChurn builds the standard churn plan used by the harness
// and cmd/lbsim: every `every` rounds up to horizon, alternately a
// random node leaves and a degree-2 node joins, so the network size
// oscillates around its initial value.
func AlternatingChurn(horizon, every int) []ChurnEvent {
	if every <= 0 || horizon <= 0 {
		return nil
	}
	var plan []ChurnEvent
	kind := ChurnLeave
	for r := every; r <= horizon; r += every {
		plan = append(plan, ChurnEvent{Round: r, Kind: kind, Node: -1, Degree: 2})
		if kind == ChurnLeave {
			kind = ChurnJoin
		} else {
			kind = ChurnLeave
		}
	}
	return plan
}

// churnPatch is the outcome of rewiring the topology for one event:
// the successor system plus the node mapping oldOf[newI] → old id (-1
// for a joined node), in the form core's Resize APIs consume.
type churnPatch struct {
	sys   *core.System
	oldOf []int
	// leave-only: the victim (old id), its old neighbors, and the
	// round-robin offset used to rehome its tasks.
	victim int
	nbs    []int32
	start  int
}

// churnName tags the graph name once, so repeated churn does not grow
// an unbounded suffix chain.
func churnName(name string) string {
	if strings.HasSuffix(name, "~churn") {
		return name
	}
	return name + "~churn"
}

// rewire computes the successor topology for ev using the event's
// deterministic stream. It does not touch task state.
func rewire(sys *core.System, ev ChurnEvent, stream *rng.Stream) (churnPatch, error) {
	g := sys.Graph()
	n := g.N()
	switch ev.Kind {
	case ChurnLeave:
		if n < 3 {
			return churnPatch{}, fmt.Errorf("dynamics: cannot remove a node from a %d-node network", n)
		}
		victim := ev.Node
		if victim < 0 {
			victim = stream.Intn(n)
		}
		if victim >= n {
			return churnPatch{}, fmt.Errorf("dynamics: leave victim %d out of range [0,%d)", victim, n)
		}
		nbs := g.Neighbors(victim)
		if len(nbs) == 0 {
			return churnPatch{}, fmt.Errorf("dynamics: victim %d has no neighbors", victim)
		}
		start := stream.Intn(len(nbs))
		newID := func(old int32) int {
			if int(old) > victim {
				return int(old) - 1
			}
			return int(old)
		}
		var edges []graph.Edge
		for _, e := range g.Edges() {
			if e.U == victim || e.V == victim {
				continue
			}
			edges = append(edges, graph.Edge{U: newID(int32(e.U)), V: newID(int32(e.V))})
		}
		// Rewire the victim's neighbors into a path (consecutive pairs in
		// sorted order) so its removal cannot disconnect the network.
		for k := 0; k+1 < len(nbs); k++ {
			if !g.HasEdge(int(nbs[k]), int(nbs[k+1])) {
				edges = append(edges, graph.Edge{U: newID(nbs[k]), V: newID(nbs[k+1])})
			}
		}
		ng, err := graph.FromEdges(churnName(g.Name()), n-1, edges)
		if err != nil {
			return churnPatch{}, fmt.Errorf("dynamics: leave rewiring: %w", err)
		}
		speeds := make(machine.Speeds, 0, n-1)
		for i := 0; i < n; i++ {
			if i != victim {
				speeds = append(speeds, sys.Speed(i))
			}
		}
		nsys, err := core.NewSystem(ng, speeds.Rescale())
		if err != nil {
			return churnPatch{}, fmt.Errorf("dynamics: leave system: %w", err)
		}
		oldOf := make([]int, n-1)
		for i := range oldOf {
			if i >= victim {
				oldOf[i] = i + 1
			} else {
				oldOf[i] = i
			}
		}
		return churnPatch{sys: nsys, oldOf: oldOf, victim: victim, nbs: nbs, start: start}, nil

	case ChurnJoin:
		d := ev.Degree
		if d <= 0 {
			d = 2
		}
		if d > n {
			d = n
		}
		targets := stream.Perm(n)[:d]
		edges := g.Edges()
		for _, t := range targets {
			edges = append(edges, graph.Edge{U: t, V: n})
		}
		ng, err := graph.FromEdges(churnName(g.Name()), n+1, edges)
		if err != nil {
			return churnPatch{}, fmt.Errorf("dynamics: join wiring: %w", err)
		}
		speed := ev.Speed
		if speed <= 0 {
			speed = 1
		}
		speeds := append(sys.Speeds(), speed)
		nsys, err := core.NewSystem(ng, speeds.Rescale())
		if err != nil {
			return churnPatch{}, fmt.Errorf("dynamics: join system: %w", err)
		}
		oldOf := make([]int, n+1)
		for i := 0; i < n; i++ {
			oldOf[i] = i
		}
		oldOf[n] = -1
		return churnPatch{sys: nsys, oldOf: oldOf, victim: -1}, nil
	}
	return churnPatch{}, fmt.Errorf("dynamics: unknown churn kind %d", ev.Kind)
}

// ApplyChurnUniform applies ev to a uniform-model instance, returning
// the successor system and task counts. For a leave, the victim's tasks
// are rehomed to its neighbors round-robin (starting at a random
// offset); joins add an empty node. The total task count is conserved
// exactly, and all randomness comes from the (seed, ev.Round)-keyed
// churn stream, so every engine sees the identical successor instance.
func ApplyChurnUniform(sys *core.System, counts []int64, ev ChurnEvent, seed uint64) (*core.System, []int64, error) {
	if len(counts) != sys.N() {
		return nil, nil, fmt.Errorf("dynamics: %d counts for %d nodes", len(counts), sys.N())
	}
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		return nil, nil, err
	}
	patch, err := rewire(sys, ev, churnStream(seed, ev.Round, ev.Seq))
	if err != nil {
		return nil, nil, err
	}
	if patch.victim >= 0 {
		// Rehome the victim's tasks: an equal share to every neighbor,
		// the remainder one-by-one from the random starting offset.
		c := st.Drain(patch.victim, st.Count(patch.victim))
		k := int64(len(patch.nbs))
		share, rem := c/k, c%k
		for idx, nb := range patch.nbs {
			extra := int64(0)
			if int64((idx-patch.start+len(patch.nbs))%len(patch.nbs)) < rem {
				extra = 1
			}
			if err := st.Inject(int(nb), share+extra); err != nil {
				return nil, nil, err
			}
		}
	}
	nst, err := st.Resize(patch.sys, patch.oldOf)
	if err != nil {
		return nil, nil, err
	}
	return patch.sys, nst.Counts(), nil
}

// ApplyChurnWeighted is the weighted-model analogue of
// ApplyChurnUniform: the victim's tasks are dealt to its neighbors
// round-robin in task order, preserving both the task count and (up to
// float summation) the total weight.
func ApplyChurnWeighted(sys *core.System, st *core.WeightedState, ev ChurnEvent, seed uint64) (*core.System, *core.WeightedState, error) {
	if st == nil {
		return nil, nil, fmt.Errorf("dynamics: nil weighted state")
	}
	patch, err := rewire(sys, ev, churnStream(seed, ev.Round, ev.Seq))
	if err != nil {
		return nil, nil, err
	}
	work := st.Clone()
	if patch.victim >= 0 {
		tasks := work.Drain(patch.victim, work.NodeTaskCount(patch.victim))
		per := make([]task.Weights, len(patch.nbs))
		for t, w := range tasks {
			idx := (patch.start + t) % len(patch.nbs)
			per[idx] = append(per[idx], w)
		}
		for idx, ws := range per {
			if len(ws) == 0 {
				continue
			}
			if err := work.Inject(int(patch.nbs[idx]), ws); err != nil {
				return nil, nil, err
			}
		}
	}
	nst, err := work.Resize(patch.sys, patch.oldOf)
	if err != nil {
		return nil, nil, err
	}
	return patch.sys, nst, nil
}
