// Package dynamics is the deterministic event layer for dynamic
// workloads: online task arrivals (Poisson background traffic plus
// periodic bursts), speed-proportional task completions, and node churn
// (join/leave with incident-edge rewiring).
//
// Determinism is the whole point. Every event stream is keyed through
// the rng keying contract — the events of round r come from
// rng.New(Seed).At(r, channel), one channel constant per event kind —
// so a Workload is a pure function of (Seed, round, static instance
// data). The driver applies the batch for round r immediately before
// the protocol's round-r decisions on every engine (sequential,
// fork–join, actor), which keeps dynamic trajectories bit-identical
// across engines exactly like static ones.
package dynamics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
)

// Event-stream channels: each event kind draws from its own
// rng.At(round, channel) stream so the kinds are independent and adding
// one cannot perturb another.
const (
	chArrival uint64 = iota
	chBurst
	chService
	chWeights
	chChurn
)

// Workload describes a dynamic task workload. The zero value is the
// static workload (no events). All event streams derive from Seed
// independently of the protocol's RunOpts.Seed, so the same traffic
// pattern can be replayed against different protocol randomness and
// vice versa.
type Workload struct {
	// Seed keys every event stream.
	Seed uint64
	// ArrivalRate λ ≥ 0 is the expected number of tasks arriving per
	// round (Poisson), spread uniformly over the nodes.
	ArrivalRate float64
	// BurstEvery > 0 makes BurstSize tasks arrive at one uniformly
	// random node every BurstEvery rounds — the adversarial hot-spot the
	// recovery metrics watch.
	BurstEvery int
	BurstSize  int64
	// ServiceRate μ ≥ 0 makes node i complete Poisson(μ·sᵢ) tasks per
	// round (clamped to its queue): faster machines drain faster, the
	// natural speed-proportional service model.
	ServiceRate float64
	// MinWeight/MaxWeight bound the weights of arriving weighted tasks
	// (defaults 0.1 and 1; must satisfy 0 < MinWeight ≤ MaxWeight ≤ 1).
	MinWeight, MaxWeight float64
}

// IsZero reports whether the workload generates no events.
func (w Workload) IsZero() bool {
	return w.ArrivalRate <= 0 && w.ServiceRate <= 0 && (w.BurstEvery <= 0 || w.BurstSize <= 0)
}

// Validate checks the workload parameters.
func (w Workload) Validate() error {
	if w.ArrivalRate < 0 || w.ServiceRate < 0 || w.BurstSize < 0 || w.BurstEvery < 0 {
		return fmt.Errorf("dynamics: negative workload parameter: %+v", w)
	}
	if !isFinite(w.ArrivalRate) || !isFinite(w.ServiceRate) {
		return fmt.Errorf("dynamics: non-finite workload rate: %+v", w)
	}
	lo, hi := w.weightBounds()
	if lo <= 0 || hi > 1 || lo > hi {
		return fmt.Errorf("dynamics: task weights must satisfy 0 < min ≤ max ≤ 1, got [%g, %g]", lo, hi)
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func (w Workload) weightBounds() (lo, hi float64) {
	lo, hi = w.MinWeight, w.MaxWeight
	if lo == 0 {
		lo = 0.1
	}
	if hi == 0 {
		hi = 1
	}
	return lo, hi
}

// arrivalCounts draws the round's per-node arrival counts (background
// Poisson traffic spread by an equal multinomial, plus the burst).
// Returns nil when nothing arrives.
func (w Workload) arrivalCounts(base *rng.Stream, n int, round uint64) []int64 {
	var arr []int64
	if w.ArrivalRate > 0 {
		s := base.At(round, chArrival)
		if total := s.Poisson(w.ArrivalRate); total > 0 {
			arr = make([]int64, n)
			for i, c := range s.EqualSplit(total, n) {
				arr[i] = int64(c)
			}
		}
	}
	if w.BurstEvery > 0 && w.BurstSize > 0 && round%uint64(w.BurstEvery) == 0 {
		if arr == nil {
			arr = make([]int64, n)
		}
		arr[base.At(round, chBurst).Intn(n)] += w.BurstSize
	}
	return arr
}

// serviceCounts draws the round's per-node completion requests,
// Poisson(μ·sᵢ) per node from node-split streams. Returns nil when the
// service process is disabled or idle this round.
func (w Workload) serviceCounts(base *rng.Stream, sys *core.System, round uint64) []int64 {
	if w.ServiceRate <= 0 {
		return nil
	}
	s := base.At(round, chService)
	var dep []int64
	for i := 0; i < sys.N(); i++ {
		if k := s.Split(uint64(i)).Poisson(w.ServiceRate * sys.Speed(i)); k > 0 {
			if dep == nil {
				dep = make([]int64, sys.N())
			}
			dep[i] = int64(k)
		}
	}
	return dep
}

// UniformEvents returns the uniform-model event batch for the given
// (global) round, or nil when the round carries no events. It is a pure
// function of (w.Seed, sys's size and speeds, round).
func (w Workload) UniformEvents(sys *core.System, round uint64) *core.EventBatch {
	if w.IsZero() || round == 0 {
		return nil
	}
	base := rng.New(w.Seed)
	arr := w.arrivalCounts(base, sys.N(), round)
	dep := w.serviceCounts(base, sys, round)
	if arr == nil && dep == nil {
		return nil
	}
	return &core.EventBatch{Arrivals: arr, Departures: dep}
}

// WeightedEvents is the weighted-model analogue of UniformEvents: the
// same arrival/service counting processes, with each arriving task
// drawing its weight uniformly from [MinWeight, MaxWeight] on a
// per-node stream.
func (w Workload) WeightedEvents(sys *core.System, round uint64) *core.EventBatch {
	if w.IsZero() || round == 0 {
		return nil
	}
	base := rng.New(w.Seed)
	arr := w.arrivalCounts(base, sys.N(), round)
	dep := w.serviceCounts(base, sys, round)
	if arr == nil && dep == nil {
		return nil
	}
	batch := &core.EventBatch{WeightDepartures: dep}
	if arr != nil {
		lo, hi := w.weightBounds()
		ws := base.At(round, chWeights)
		batch.WeightArrivals = make([][]float64, len(arr))
		for i, c := range arr {
			if c == 0 {
				continue
			}
			s := ws.Split(uint64(i))
			weights := make([]float64, c)
			for t := range weights {
				weights[t] = lo + (hi-lo)*s.Float64()
			}
			batch.WeightArrivals[i] = weights
		}
	}
	return batch
}

// churnStream derives the deterministic stream for a churn event
// applied before the given global round; seq separates multiple events
// at the same round into independent streams.
func churnStream(seed uint64, round, seq int) *rng.Stream {
	return rng.New(seed).At(uint64(round), chChurn).Split(uint64(seq))
}
