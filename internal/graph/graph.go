// Package graph provides the network substrate for the load-balancing
// protocols: an immutable undirected graph in compressed sparse row (CSR)
// form, generators for the graph classes analysed in the paper (complete
// graph, ring, path, mesh, torus, hypercube) and several auxiliary
// families, plus the structural queries the analysis needs (degrees,
// maximum degree Δ, d_ij = max(deg i, deg j), diameter, connectivity).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph on vertices 0..n-1.
// Neighbor lists are stored in CSR form and sorted ascending.
type Graph struct {
	name   string
	n      int
	offset []int32 // len n+1
	adj    []int32 // len 2|E|
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

var (
	// ErrEmptyGraph is returned by builders asked for zero vertices.
	ErrEmptyGraph = errors.New("graph: graph must have at least one vertex")
	// ErrNotConnected is returned by operations requiring connectivity.
	ErrNotConnected = errors.New("graph: graph is not connected")
)

// FromEdges builds a graph with n vertices from an edge list. Self-loops
// and duplicate edges are rejected.
func FromEdges(name string, n int, edges []Edge) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	deg := make([]int32, n)
	seen := make(map[Edge]struct{}, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
		if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		key := e
		if key.U > key.V {
			key.U, key.V = key.V, key.U
		}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", key.U, key.V)
		}
		seen[key] = struct{}{}
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{name: name, n: n}
	g.offset = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.offset[i+1] = g.offset[i] + deg[i]
	}
	g.adj = make([]int32, g.offset[n])
	cursor := make([]int32, n)
	copy(cursor, g.offset[:n])
	// Fill from the caller's slice, not the dedup map: together with the
	// per-row sort below this makes the construction a pure function of
	// the edge multiset, independent of both map iteration order and the
	// caller's edge ordering.
	for _, e := range edges {
		g.adj[cursor[e.U]] = int32(e.V)
		cursor[e.U]++
		g.adj[cursor[e.V]] = int32(e.U)
		cursor[e.V]++
	}
	for i := 0; i < n; i++ {
		nb := g.adj[g.offset[i]:g.offset[i+1]]
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
	}
	return g, nil
}

// mustFromEdges is for generators whose edge lists are correct by
// construction.
func mustFromEdges(name string, n int, edges []Edge) *Graph {
	g, err := FromEdges(name, n, edges)
	if err != nil {
		panic("graph: internal generator bug: " + err.Error())
	}
	return g
}

// Name returns the human-readable name of the graph family instance.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns deg(v).
func (g *Graph) Degree(v int) int {
	return int(g.offset[v+1] - g.offset[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offset[v]:g.offset[v+1]]
}

// MaxDegree returns Δ, the maximum degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum degree.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// DMax returns d_ij = max(deg(i), deg(j)) for an edge (i,j), the
// normalisation used by the protocol's migration probability.
func (g *Graph) DMax(i, j int) int {
	di, dj := g.Degree(i), g.Degree(j)
	if di > dj {
		return di
	}
	return dj
}

// HasEdge reports whether (u,v) is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	nb := g.Neighbors(u)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case nb[mid] < int32(v):
			lo = mid + 1
		case nb[mid] > int32(v):
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Edges returns all undirected edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				edges = append(edges, Edge{U: u, V: int(v)})
			}
		}
	}
	return edges
}

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return false
	}
	visited := make([]bool, g.n)
	count := g.bfsFrom(0, visited, nil)
	return count == g.n
}

// bfsFrom runs a BFS from src, marking visited; if dist is non-nil it
// receives BFS distances. Returns the number of reached vertices.
func (g *Graph) bfsFrom(src int, visited []bool, dist []int32) int {
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	visited[src] = true
	if dist != nil {
		dist[src] = 0
	}
	count := 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if !visited[v] {
				visited[v] = true
				if dist != nil {
					dist[v] = dist[u] + 1
				}
				queue = append(queue, v)
				count++
			}
		}
	}
	return count
}

// Eccentricity returns the maximum BFS distance from v, or an error if
// the graph is disconnected.
func (g *Graph) Eccentricity(v int) (int, error) {
	visited := make([]bool, g.n)
	dist := make([]int32, g.n)
	if g.bfsFrom(v, visited, dist) != g.n {
		return 0, ErrNotConnected
	}
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc), nil
}

// Diameter returns diam(G) by running a BFS from every vertex. It returns
// ErrNotConnected for disconnected graphs. Cost is O(n·(n+m)); fine for
// the simulation sizes used in the experiments.
func (g *Graph) Diameter() (int, error) {
	diam := 0
	visited := make([]bool, g.n)
	dist := make([]int32, g.n)
	for v := 0; v < g.n; v++ {
		for i := range visited {
			visited[i] = false
		}
		if g.bfsFrom(v, visited, dist) != g.n {
			return 0, ErrNotConnected
		}
		for _, d := range dist {
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam, nil
}

// DegreeSum returns the sum of all degrees (= 2|E|).
func (g *Graph) DegreeSum() int { return len(g.adj) }

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("%s(n=%d, m=%d)", g.name, g.n, g.M())
}
