package graph

import (
	"fmt"
	"math"
)

// checkCSRSize rejects adjacency sizes whose offsets would overflow the
// int32 CSR arrays. degSum is the total directed-arc count (2|E|).
func checkCSRSize(degSum int64) error {
	if degSum > math.MaxInt32 {
		return fmt.Errorf("graph: %d adjacency entries overflow the int32 CSR offsets", degSum)
	}
	return nil
}

// CSR is the flat compressed-sparse-row view of a graph: offsets (len
// n+1) index into adj (len 2|E|), row v of adj is the sorted neighbor
// list of v. It is the data layout the large-scale engines (package
// shard) operate on: O(1) degree, cache-linear neighbor scans, and a
// memory footprint of exactly 4·(n+1) + 4·2|E| bytes regardless of how
// the graph was built.
//
// A CSR is immutable and safe for concurrent use. Graph already stores
// its adjacency in this form, so conversions in both directions are
// zero-copy views over shared arrays; the direct family constructors
// below (RingCSR, TorusCSR, HypercubeCSR, ...) write the arrays
// in place, which is what lets a million-node ring or torus come into
// existence without ever materializing an edge list or edge map.
type CSR struct {
	name    string
	n       int
	offsets []int32 // len n+1
	adj     []int32 // len 2|E|, each row sorted ascending
	maxDeg  int
}

// CSR returns the graph's compressed-sparse-row view. The view aliases
// the graph's internal storage — no copying — and inherits its
// immutability.
func (g *Graph) CSR() *CSR {
	return &CSR{name: g.name, n: g.n, offsets: g.offset, adj: g.adj, maxDeg: g.MaxDegree()}
}

// Graph wraps the CSR back into a *Graph, again without copying. The
// two views share storage; both are immutable.
func (c *CSR) Graph() *Graph {
	return &Graph{name: c.name, n: c.n, offset: c.offsets, adj: c.adj}
}

// NewCSR validates raw CSR arrays (monotone offsets, in-range sorted
// rows, no self-loops or duplicates, symmetric adjacency) and returns
// the view. It takes ownership of the slices; callers must not mutate
// them afterwards. Generators that are correct by construction skip
// this and assemble the struct directly.
func NewCSR(name string, n int, offsets, adj []int32) (*CSR, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph: %d offsets for %d vertices (want n+1)", len(offsets), n)
	}
	if offsets[0] != 0 || int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("graph: offsets span [%d,%d], adj has %d entries", offsets[0], offsets[n], len(adj))
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
		row := adj[offsets[v]:offsets[v+1]]
		if len(row) > maxDeg {
			maxDeg = len(row)
		}
		for k, w := range row {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: neighbor %d of vertex %d out of range [0,%d)", w, v, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if k > 0 && row[k-1] >= w {
				return nil, fmt.Errorf("graph: row %d not strictly sorted at position %d", v, k)
			}
		}
	}
	c := &CSR{name: name, n: n, offsets: offsets, adj: adj, maxDeg: maxDeg}
	// Symmetry: every arc must have its reverse. Binary search per arc.
	g := c.Graph()
	for v := 0; v < n; v++ {
		for _, w := range c.Neighbors(v) {
			if !g.HasEdge(int(w), v) {
				return nil, fmt.Errorf("graph: arc %d→%d has no reverse", v, w)
			}
		}
	}
	return c, nil
}

// Name returns the family instance name.
func (c *CSR) Name() string { return c.name }

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// M returns the number of undirected edges.
func (c *CSR) M() int { return len(c.adj) / 2 }

// Degree returns deg(v) in O(1).
func (c *CSR) Degree(v int) int { return int(c.offsets[v+1] - c.offsets[v]) }

// MaxDegree returns Δ (precomputed at construction).
func (c *CSR) MaxDegree() int { return c.maxDeg }

// Neighbors returns the sorted neighbor row of v. The slice aliases the
// CSR storage and must not be modified.
func (c *CSR) Neighbors(v int) []int32 { return c.adj[c.offsets[v]:c.offsets[v+1]] }

// Offsets returns the offsets array (len n+1). Read-only.
func (c *CSR) Offsets() []int32 { return c.offsets }

// Adj returns the flat adjacency array (len 2|E|). Read-only.
func (c *CSR) Adj() []int32 { return c.adj }

// DegreeSum returns the sum of all degrees (= 2|E|).
func (c *CSR) DegreeSum() int { return len(c.adj) }

// Bytes returns the memory footprint of the CSR arrays, the "bytes per
// node" denominator of the scaling benchmarks.
func (c *CSR) Bytes() int64 { return 4 * int64(len(c.offsets)+len(c.adj)) }

// newUniformCSR allocates a CSR where every vertex has exactly deg
// neighbors, for the regular family constructors. It errors when the
// adjacency would overflow the int32 offsets (e.g. Hypercube(27),
// Complete(47000)) — the family size caps alone do not rule that out.
func newUniformCSR(name string, n, deg int) (*CSR, error) {
	if err := checkCSRSize(int64(n) * int64(deg)); err != nil {
		return nil, err
	}
	offsets := make([]int32, n+1)
	for v := 1; v <= n; v++ {
		offsets[v] = offsets[v-1] + int32(deg)
	}
	return &CSR{name: name, n: n, offsets: offsets, adj: make([]int32, n*deg), maxDeg: deg}, nil
}

// RingCSR builds the cycle C_n (n ≥ 3) directly in CSR form: no edge
// list, no map — just the two sorted neighbors of every vertex.
func RingCSR(n int) (*CSR, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
	}
	c, err := newUniformCSR(fmt.Sprintf("ring-%d", n), n, 2)
	if err != nil {
		return nil, err
	}
	c.adj[0], c.adj[1] = 1, int32(n-1)
	for v := 1; v < n-1; v++ {
		c.adj[2*v], c.adj[2*v+1] = int32(v-1), int32(v+1)
	}
	c.adj[2*(n-1)], c.adj[2*(n-1)+1] = 0, int32(n-2)
	return c, nil
}

// PathCSR builds the path P_n directly in CSR form.
func PathCSR(n int) (*CSR, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	name := fmt.Sprintf("path-%d", n)
	if n == 1 {
		return &CSR{name: name, n: 1, offsets: make([]int32, 2), adj: []int32{}}, nil
	}
	if err := checkCSRSize(2 * (int64(n) - 1)); err != nil {
		return nil, err
	}
	offsets := make([]int32, n+1)
	adj := make([]int32, 2*(n-1))
	pos := int32(0)
	for v := 0; v < n; v++ {
		offsets[v] = pos
		if v > 0 {
			adj[pos] = int32(v - 1)
			pos++
		}
		if v < n-1 {
			adj[pos] = int32(v + 1)
			pos++
		}
	}
	offsets[n] = pos
	maxDeg := 2
	if n == 2 {
		maxDeg = 1
	}
	return &CSR{name: name, n: n, offsets: offsets, adj: adj, maxDeg: maxDeg}, nil
}

// TorusCSR builds the rows×cols torus (both ≥ 3) directly in CSR form:
// every vertex's four wrap-around neighbors, sorted in place.
func TorusCSR(rows, cols int) (*CSR, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs dims >= 3, got %dx%d", rows, cols)
	}
	n := rows * cols
	c, err := newUniformCSR(fmt.Sprintf("torus-%dx%d", rows, cols), n, 4)
	if err != nil {
		return nil, err
	}
	var nb [4]int32
	for r := 0; r < rows; r++ {
		up := ((r - 1 + rows) % rows) * cols
		down := ((r + 1) % rows) * cols
		row := r * cols
		for col := 0; col < cols; col++ {
			v := row + col
			nb[0] = int32(up + col)
			nb[1] = int32(down + col)
			nb[2] = int32(row + (col-1+cols)%cols)
			nb[3] = int32(row + (col+1)%cols)
			sort4(&nb)
			copy(c.adj[4*v:], nb[:])
		}
	}
	return c, nil
}

// sort4 sorts four elements with a fixed comparator network.
func sort4(a *[4]int32) {
	if a[0] > a[1] {
		a[0], a[1] = a[1], a[0]
	}
	if a[2] > a[3] {
		a[2], a[3] = a[3], a[2]
	}
	if a[0] > a[2] {
		a[0], a[2] = a[2], a[0]
	}
	if a[1] > a[3] {
		a[1], a[3] = a[3], a[1]
	}
	if a[1] > a[2] {
		a[1], a[2] = a[2], a[1]
	}
}

// HypercubeCSR builds the d-dimensional hypercube Q_d (n = 2^d)
// directly in CSR form. Row v is emitted already sorted: clearing v's
// set bits from high to low yields the smaller neighbors in ascending
// order, then setting its unset bits from low to high yields the larger
// ones.
func HypercubeCSR(d int) (*CSR, error) {
	if d <= 0 || d > 30 {
		return nil, fmt.Errorf("graph: hypercube dimension must be in [1,30], got %d", d)
	}
	n := 1 << d
	c, err := newUniformCSR(fmt.Sprintf("hypercube-%d", d), n, d)
	if err != nil {
		return nil, err
	}
	pos := 0
	for v := 0; v < n; v++ {
		for bit := d - 1; bit >= 0; bit-- {
			if v&(1<<bit) != 0 {
				c.adj[pos] = int32(v &^ (1 << bit))
				pos++
			}
		}
		for bit := 0; bit < d; bit++ {
			if v&(1<<bit) == 0 {
				c.adj[pos] = int32(v | 1<<bit)
				pos++
			}
		}
	}
	return c, nil
}

// CompleteCSR builds K_n directly in CSR form (row v is 0..n-1 minus
// v). The layout is Θ(n²); callers wanting large n should pick a sparse
// family.
func CompleteCSR(n int) (*CSR, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	c, err := newUniformCSR(fmt.Sprintf("complete-%d", n), n, n-1)
	if err != nil {
		return nil, err
	}
	pos := 0
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u != v {
				c.adj[pos] = int32(u)
				pos++
			}
		}
	}
	return c, nil
}

// MeshCSR builds the rows×cols open grid directly in CSR form.
func MeshCSR(rows, cols int) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, ErrEmptyGraph
	}
	n := rows * cols
	if err := checkCSRSize(4 * int64(n)); err != nil {
		return nil, err
	}
	offsets := make([]int32, n+1)
	// Degrees first (2, 3 or 4 depending on boundary), then fill.
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			deg := 0
			if r > 0 {
				deg++
			}
			if r < rows-1 {
				deg++
			}
			if col > 0 {
				deg++
			}
			if col < cols-1 {
				deg++
			}
			v := r*cols + col
			offsets[v+1] = offsets[v] + int32(deg)
		}
	}
	adj := make([]int32, offsets[n])
	maxDeg := 0
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			v := r*cols + col
			pos := offsets[v]
			// Emitted in ascending vertex order: up, left, right, down.
			if r > 0 {
				adj[pos] = int32(v - cols)
				pos++
			}
			if col > 0 {
				adj[pos] = int32(v - 1)
				pos++
			}
			if col < cols-1 {
				adj[pos] = int32(v + 1)
				pos++
			}
			if r < rows-1 {
				adj[pos] = int32(v + cols)
				pos++
			}
			if d := int(pos - offsets[v]); d > maxDeg {
				maxDeg = d
			}
		}
	}
	return &CSR{name: fmt.Sprintf("mesh-%dx%d", rows, cols), n: n, offsets: offsets, adj: adj, maxDeg: maxDeg}, nil
}
