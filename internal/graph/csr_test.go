package graph

import (
	"fmt"
	"reflect"
	"testing"
)

// edgesOf regenerates a family instance through the generic
// FromEdges path, as the ground truth the direct CSR constructors are
// checked against.
func fromEdgeList(t *testing.T, name string, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(name, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameGraph demands identical CSR arrays, not just isomorphism: the
// engines key randomness by vertex index and scan rows in storage
// order, so the direct constructors must reproduce the FromEdges layout
// bit for bit.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n = %d, want %d", got.n, want.n)
	}
	if !reflect.DeepEqual(got.offset, want.offset) {
		t.Fatalf("offsets differ:\n got %v\nwant %v", got.offset, want.offset)
	}
	if !reflect.DeepEqual(got.adj, want.adj) {
		t.Fatalf("adjacency differs:\n got %v\nwant %v", got.adj, want.adj)
	}
}

// TestDirectCSRMatchesFromEdges cross-checks every direct constructor
// against the edge-list construction it replaced.
func TestDirectCSRMatchesFromEdges(t *testing.T) {
	t.Run("ring", func(t *testing.T) {
		for _, n := range []int{3, 4, 7, 32} {
			var edges []Edge
			for u := 0; u < n; u++ {
				v := (u + 1) % n
				if u < v {
					edges = append(edges, Edge{U: u, V: v})
				} else {
					edges = append(edges, Edge{U: v, V: u})
				}
			}
			g, err := Ring(n)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, fromEdgeList(t, g.Name(), n, edges))
		}
	})
	t.Run("path", func(t *testing.T) {
		for _, n := range []int{1, 2, 3, 9} {
			var edges []Edge
			for u := 0; u+1 < n; u++ {
				edges = append(edges, Edge{U: u, V: u + 1})
			}
			g, err := Path(n)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, fromEdgeList(t, g.Name(), n, edges))
		}
	})
	t.Run("complete", func(t *testing.T) {
		for _, n := range []int{1, 2, 5, 12} {
			var edges []Edge
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					edges = append(edges, Edge{U: u, V: v})
				}
			}
			g, err := Complete(n)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, fromEdgeList(t, g.Name(), n, edges))
		}
	})
	t.Run("mesh", func(t *testing.T) {
		for _, dims := range [][2]int{{1, 1}, {1, 5}, {3, 4}, {6, 6}} {
			rows, cols := dims[0], dims[1]
			var edges []Edge
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					u := r*cols + c
					if c+1 < cols {
						edges = append(edges, Edge{U: u, V: u + 1})
					}
					if r+1 < rows {
						edges = append(edges, Edge{U: u, V: u + cols})
					}
				}
			}
			g, err := Mesh(rows, cols)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, fromEdgeList(t, g.Name(), rows*cols, edges))
		}
	})
	t.Run("torus", func(t *testing.T) {
		for _, dims := range [][2]int{{3, 3}, {3, 5}, {4, 4}, {5, 7}} {
			rows, cols := dims[0], dims[1]
			var edges []Edge
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					u := r*cols + c
					for _, v := range []int{r*cols + (c+1)%cols, ((r+1)%rows)*cols + c} {
						e := Edge{U: u, V: v}
						if e.U > e.V {
							e.U, e.V = e.V, e.U
						}
						edges = append(edges, e)
					}
				}
			}
			g, err := Torus(rows, cols)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, fromEdgeList(t, g.Name(), rows*cols, edges))
		}
	})
	t.Run("hypercube", func(t *testing.T) {
		for _, d := range []int{1, 2, 3, 5} {
			n := 1 << d
			var edges []Edge
			for u := 0; u < n; u++ {
				for bit := 0; bit < d; bit++ {
					if v := u ^ (1 << bit); u < v {
						edges = append(edges, Edge{U: u, V: v})
					}
				}
			}
			g, err := Hypercube(d)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, fromEdgeList(t, g.Name(), n, edges))
		}
	})
}

// TestCSRViewRoundTrip checks the zero-copy conversions and accessors.
func TestCSRViewRoundTrip(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := g.CSR()
	if c.N() != g.N() || c.M() != g.M() || c.Name() != g.Name() {
		t.Fatalf("view (n=%d m=%d %q) disagrees with graph (n=%d m=%d %q)",
			c.N(), c.M(), c.Name(), g.N(), g.M(), g.Name())
	}
	if c.MaxDegree() != g.MaxDegree() {
		t.Fatalf("MaxDegree %d, want %d", c.MaxDegree(), g.MaxDegree())
	}
	for v := 0; v < g.N(); v++ {
		if c.Degree(v) != g.Degree(v) {
			t.Fatalf("degree(%d) = %d, want %d", v, c.Degree(v), g.Degree(v))
		}
		nb := c.Neighbors(v)
		gb := g.Neighbors(v)
		if len(nb) != len(gb) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(nb), len(gb))
		}
		// Zero copy: the very same backing array.
		if &nb[0] != &gb[0] {
			t.Fatalf("vertex %d: CSR view copied the adjacency", v)
		}
	}
	back := c.Graph()
	sameGraph(t, back, g)
	if want := 4 * int64(len(c.Offsets())+len(c.Adj())); c.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", c.Bytes(), want)
	}
}

// TestNewCSRValidation exercises the validated raw-array entry point.
func TestNewCSRValidation(t *testing.T) {
	// A valid triangle.
	if _, err := NewCSR("tri", 3, []int32{0, 2, 4, 6}, []int32{1, 2, 0, 2, 0, 1}); err != nil {
		t.Fatalf("valid triangle rejected: %v", err)
	}
	cases := []struct {
		name    string
		n       int
		offsets []int32
		adj     []int32
	}{
		{"empty", 0, []int32{0}, nil},
		{"offsets-length", 3, []int32{0, 2, 4}, []int32{1, 2, 0, 2}},
		{"offsets-span", 3, []int32{0, 2, 4, 5}, []int32{1, 2, 0, 2, 0, 1}},
		{"decreasing", 3, []int32{0, 4, 2, 6}, []int32{1, 2, 0, 2, 0, 1}},
		{"out-of-range", 3, []int32{0, 2, 4, 6}, []int32{1, 3, 0, 2, 0, 1}},
		{"self-loop", 3, []int32{0, 2, 4, 6}, []int32{0, 2, 0, 2, 0, 1}},
		{"unsorted-row", 3, []int32{0, 2, 4, 6}, []int32{2, 1, 0, 2, 0, 1}},
		{"asymmetric", 3, []int32{0, 2, 3, 6}, []int32{1, 2, 0, 0, 1, 2}},
	}
	for _, tc := range cases {
		if _, err := NewCSR(tc.name, tc.n, tc.offsets, tc.adj); err == nil {
			t.Errorf("%s: invalid CSR accepted", tc.name)
		}
	}
}

// TestLargeRingNoEdgeMap is the scaling smoke test: a million-node ring
// must build in CSR-array memory only. (The old edge-map construction
// allocated tens of millions of map entries; the direct constructor
// allocates exactly two slices.)
func TestLargeRingNoEdgeMap(t *testing.T) {
	const n = 1_000_000
	g, err := Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n || g.M() != n {
		t.Fatalf("got %s", g)
	}
	for _, v := range []int{0, 1, n / 2, n - 1} {
		if d := g.Degree(v); d != 2 {
			t.Fatalf("degree(%d) = %d", v, d)
		}
	}
	if !g.IsConnected() {
		t.Fatal("ring disconnected")
	}
	if got, want := g.CSR().Bytes(), int64(4*(n+1)+4*2*n); got != want {
		t.Fatalf("CSR bytes %d, want %d", got, want)
	}
}

// TestDirectConstructorNames pins the instance-name format, which the
// experiment CSVs key on.
func TestDirectConstructorNames(t *testing.T) {
	g, _ := Ring(8)
	if g.Name() != "ring-8" {
		t.Fatalf("ring name %q", g.Name())
	}
	g, _ = Torus(3, 4)
	if g.Name() != "torus-3x4" {
		t.Fatalf("torus name %q", g.Name())
	}
	g, _ = Hypercube(3)
	if g.Name() != "hypercube-3" {
		t.Fatalf("hypercube name %q", g.Name())
	}
	g, _ = Complete(5)
	if got, want := g.String(), fmt.Sprintf("complete-5(n=%d, m=%d)", 5, 10); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestCSRSizeOverflowRejected: family sizes whose adjacency would
// overflow the int32 CSR offsets must error cleanly instead of
// silently wrapping (Hypercube(27) passes the d ≤ 30 cap but holds
// 2^27·27 ≈ 3.6·10⁹ arcs).
func TestCSRSizeOverflowRejected(t *testing.T) {
	if _, err := HypercubeCSR(27); err == nil {
		t.Error("HypercubeCSR(27) accepted despite int32 offset overflow")
	}
	if _, err := Hypercube(28); err == nil {
		t.Error("Hypercube(28) accepted despite int32 offset overflow")
	}
	if _, err := CompleteCSR(50_000); err == nil {
		t.Error("CompleteCSR(50000) accepted despite int32 offset overflow")
	}
	// Sizes just inside the cap still construct (d=26: 2^26·26 < 2^31 —
	// too big to build in a unit test, so only the guard arithmetic is
	// checked here).
	if err := checkCSRSize((1 << 26) * 26); err != nil {
		t.Errorf("in-range size rejected: %v", err)
	}
}
