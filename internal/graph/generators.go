package graph

import (
	"fmt"

	"repro/internal/rng"
)

// The Table-1 families (and the other regular lattices) assemble their
// CSR arrays directly — see csr.go — so building a million-node
// instance costs exactly the final adjacency arrays, with no edge list,
// edge map, or per-edge allocation in between.

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	c, err := CompleteCSR(n)
	if err != nil {
		return nil, err
	}
	return c.Graph(), nil
}

// Ring returns the cycle C_n (n >= 3).
func Ring(n int) (*Graph, error) {
	c, err := RingCSR(n)
	if err != nil {
		return nil, err
	}
	return c.Graph(), nil
}

// Path returns the path P_n (n >= 1).
func Path(n int) (*Graph, error) {
	c, err := PathCSR(n)
	if err != nil {
		return nil, err
	}
	return c.Graph(), nil
}

// Mesh returns the rows×cols grid graph (open boundaries).
// Vertex (r,c) has index r*cols+c.
func Mesh(rows, cols int) (*Graph, error) {
	c, err := MeshCSR(rows, cols)
	if err != nil {
		return nil, err
	}
	return c.Graph(), nil
}

// Torus returns the rows×cols torus (wrap-around grid). Dimensions must be
// at least 3 so that no duplicate edges arise from the wrap.
func Torus(rows, cols int) (*Graph, error) {
	c, err := TorusCSR(rows, cols)
	if err != nil {
		return nil, err
	}
	return c.Graph(), nil
}

// Hypercube returns the d-dimensional hypercube Q_d on n = 2^d vertices.
func Hypercube(d int) (*Graph, error) {
	c, err := HypercubeCSR(d)
	if err != nil {
		return nil, err
	}
	return c.Graph(), nil
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: 0, V: v})
	}
	return FromEdges(fmt.Sprintf("star-%d", n), n, edges)
}

// BinaryTree returns the complete binary tree on n vertices, with vertex i
// having children 2i+1 and 2i+2.
func BinaryTree(n int) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: (v - 1) / 2, V: v})
	}
	return FromEdges(fmt.Sprintf("bintree-%d", n), n, edges)
}

// Barbell returns two K_k cliques joined by a path of length bridge
// (bridge >= 1 gives bridge-1 intermediate vertices). A classic
// low-conductance family used to stress the λ₂ dependence.
func Barbell(k, bridge int) (*Graph, error) {
	if k < 3 || bridge < 1 {
		return nil, fmt.Errorf("graph: barbell needs k >= 3, bridge >= 1, got k=%d bridge=%d", k, bridge)
	}
	n := 2*k + bridge - 1
	edges := make([]Edge, 0, k*(k-1)+bridge)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	base := k + bridge - 1
	for u := base; u < base+k; u++ {
		for v := u + 1; v < base+k; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	// Path from vertex k-1 through k, k+1, ..., to base.
	prev := k - 1
	for v := k; v <= base; v++ {
		edges = append(edges, Edge{U: prev, V: v})
		prev = v
	}
	return FromEdges(fmt.Sprintf("barbell-%d-%d", k, bridge), n, edges)
}

// RandomRegular returns a random d-regular graph on n vertices via the
// pairing model with restarts (rejecting self-loops and multi-edges).
// n*d must be even and d < n.
func RandomRegular(n, d int, stream *rng.Stream) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if d <= 0 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("graph: invalid regular params n=%d d=%d", n, d)
	}
	const maxAttempts = 500
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		stream.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[Edge]struct{}, n*d/2)
		edges := make([]Edge, 0, n*d/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			e := Edge{U: u, V: v}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			if _, dup := seen[e]; dup {
				ok = false
				break
			}
			seen[e] = struct{}{}
			edges = append(edges, e)
		}
		if !ok {
			continue
		}
		g, err := FromEdges(fmt.Sprintf("regular-%d-%d", n, d), n, edges)
		if err != nil {
			continue
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: failed to sample connected %d-regular graph on %d vertices", d, n)
}

// ErdosRenyi returns G(n,p) conditioned on connectivity (resampled up to
// a bounded number of attempts).
func ErdosRenyi(n int, p float64, stream *rng.Stream) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: G(n,p) needs p in (0,1], got %g", p)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		edges := make([]Edge, 0, int(float64(n*(n-1)/2)*p)+16)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if stream.Bernoulli(p) {
					edges = append(edges, Edge{U: u, V: v})
				}
			}
		}
		g, err := FromEdges(fmt.Sprintf("gnp-%d-%g", n, p), n, edges)
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: failed to sample connected G(%d,%g)", n, p)
}

// Lollipop returns a K_k clique attached to a path with tail vertices.
func Lollipop(k, tail int) (*Graph, error) {
	if k < 3 || tail < 1 {
		return nil, fmt.Errorf("graph: lollipop needs k >= 3, tail >= 1, got k=%d tail=%d", k, tail)
	}
	n := k + tail
	edges := make([]Edge, 0, k*(k-1)/2+tail)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	for v := k; v < n; v++ {
		edges = append(edges, Edge{U: v - 1, V: v})
	}
	return FromEdges(fmt.Sprintf("lollipop-%d-%d", k, tail), n, edges)
}
