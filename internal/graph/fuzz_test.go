// Native fuzz target for the graph generators: every family either
// rejects its parameters with an error or produces a structurally sound
// graph — symmetric sorted CSR adjacency, no self-loops or duplicates,
// consistent degree accounting, and connectivity for the families that
// guarantee it. These are exactly the invariants the protocol engines
// and the churn rewiring of package dynamics rely on.
package graph

import (
	"testing"

	"repro/internal/rng"
)

// checkInvariants validates the structural invariants of g.
func checkInvariants(t *testing.T, g *Graph, wantConnected bool) {
	t.Helper()
	n := g.N()
	if n <= 0 {
		t.Fatalf("graph with %d vertices", n)
	}
	degSum := 0
	for v := 0; v < n; v++ {
		nbs := g.Neighbors(v)
		if len(nbs) != g.Degree(v) {
			t.Fatalf("vertex %d: %d neighbors but degree %d", v, len(nbs), g.Degree(v))
		}
		degSum += len(nbs)
		for idx, u := range nbs {
			if int(u) == v {
				t.Fatalf("self-loop at vertex %d", v)
			}
			if u < 0 || int(u) >= n {
				t.Fatalf("vertex %d: neighbor %d out of range", v, u)
			}
			if idx > 0 && nbs[idx-1] >= u {
				t.Fatalf("vertex %d: neighbor list not strictly sorted at %d", v, idx)
			}
			if !g.HasEdge(int(u), v) {
				t.Fatalf("asymmetric edge: %d→%d present, reverse missing", v, u)
			}
		}
	}
	if degSum != g.DegreeSum() || degSum != 2*g.M() {
		t.Fatalf("degree sum %d, DegreeSum %d, 2M %d disagree", degSum, g.DegreeSum(), 2*g.M())
	}
	if wantConnected && !g.IsConnected() {
		t.Fatalf("generator produced a disconnected graph: %v", g)
	}
}

func FuzzGenerators(f *testing.F) {
	f.Add(uint8(0), 8, uint64(1))
	f.Add(uint8(1), 1, uint64(2))
	f.Add(uint8(2), 16, uint64(3))
	f.Add(uint8(3), 9, uint64(4))
	f.Add(uint8(4), 64, uint64(5))
	f.Add(uint8(5), 0, uint64(6))
	f.Add(uint8(6), -3, uint64(7))
	f.Add(uint8(7), 12, uint64(8))
	f.Add(uint8(8), 20, uint64(9))
	f.Add(uint8(9), 10, uint64(10))
	f.Fuzz(func(t *testing.T, family uint8, n int, seed uint64) {
		// Bound the instance size; the invariants are size-independent
		// and the diameter of the interesting corner cases is small.
		if n > 1<<10 {
			n %= 1 << 10
		}
		stream := rng.New(seed)
		var g *Graph
		var err error
		connected := true
		switch family % 10 {
		case 0:
			g, err = Complete(n)
		case 1:
			g, err = Ring(n)
		case 2:
			g, err = Path(n)
		case 3:
			g, err = Mesh(n%32, n/32+1)
		case 4:
			g, err = Torus(n%32, n/32+1)
		case 5:
			g, err = Hypercube(n % 11)
		case 6:
			g, err = Star(n)
		case 7:
			g, err = BinaryTree(n)
		case 8:
			g, err = RandomRegular(n, 3+int(seed%3), stream)
			// d-regular random graphs are connected w.h.p. but not by
			// construction.
			connected = false
		case 9:
			g, err = ErdosRenyi(n, 0.5, stream)
			connected = false
		}
		if err != nil {
			return // parameter rejection is a valid outcome
		}
		checkInvariants(t, g, connected)
	})
}
