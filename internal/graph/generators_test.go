package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestComplete(t *testing.T) {
	g, err := Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 45 {
		t.Errorf("K_10 has %d edges, want 45", g.M())
	}
	if g.MaxDegree() != 9 || g.MinDegree() != 9 {
		t.Errorf("K_10 degrees %d/%d, want 9/9", g.MinDegree(), g.MaxDegree())
	}
	if _, err := Complete(0); err == nil {
		t.Error("Complete(0) accepted")
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(7)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 7 || g.MaxDegree() != 2 || g.MinDegree() != 2 {
		t.Errorf("C_7: m=%d Δ=%d δ=%d", g.M(), g.MaxDegree(), g.MinDegree())
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) accepted")
	}
}

func TestPath(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || g.MaxDegree() != 2 || g.MinDegree() != 1 {
		t.Errorf("P_5: m=%d Δ=%d δ=%d", g.M(), g.MaxDegree(), g.MinDegree())
	}
	g1, err := Path(1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != 0 || !g1.IsConnected() {
		t.Error("P_1 should be a single connected vertex")
	}
}

func TestMesh(t *testing.T) {
	g, err := Mesh(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Errorf("mesh n=%d, want 20", g.N())
	}
	// Edges: 4*(5-1) horizontal + 5*(4-1) vertical = 16+15 = 31.
	if g.M() != 31 {
		t.Errorf("mesh m=%d, want 31", g.M())
	}
	if g.MaxDegree() != 4 || g.MinDegree() != 2 {
		t.Errorf("mesh degrees %d/%d, want 2/4", g.MinDegree(), g.MaxDegree())
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 40 {
		t.Errorf("torus n=%d m=%d, want 20, 40", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d)=%d, want 4", v, g.Degree(v))
		}
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("Torus(2,5) accepted")
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 8; d++ {
		g, err := Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << uint(d)
		if g.N() != n || g.M() != n*d/2 {
			t.Errorf("Q_%d: n=%d m=%d", d, g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != d {
				t.Fatalf("Q_%d degree(%d)=%d", d, v, g.Degree(v))
			}
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) accepted")
	}
	if _, err := Hypercube(31); err == nil {
		t.Error("Hypercube(31) accepted")
	}
}

func TestStarAndTree(t *testing.T) {
	s, err := Star(9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 8 || s.M() != 8 {
		t.Errorf("star: deg(center)=%d m=%d", s.Degree(0), s.M())
	}
	bt, err := BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	if bt.M() != 14 || !bt.IsConnected() {
		t.Errorf("binary tree m=%d connected=%v", bt.M(), bt.IsConnected())
	}
}

func TestBarbellAndLollipop(t *testing.T) {
	bb, err := Barbell(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.IsConnected() {
		t.Error("barbell disconnected")
	}
	// 2 cliques K4 (6 edges each) + path of length 3 (3 edges).
	if bb.M() != 15 {
		t.Errorf("barbell m=%d, want 15", bb.M())
	}
	lp, err := Lollipop(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !lp.IsConnected() || lp.N() != 9 {
		t.Errorf("lollipop n=%d connected=%v", lp.N(), lp.IsConnected())
	}
}

func TestRandomRegular(t *testing.T) {
	stream := rng.New(42)
	g, err := RandomRegular(24, 3, stream)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("degree(%d)=%d, want 3", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("random regular graph disconnected")
	}
	if _, err := RandomRegular(5, 3, stream); err == nil {
		t.Error("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, stream); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	stream := rng.New(7)
	g, err := ErdosRenyi(30, 0.3, stream)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("G(n,p) sample disconnected despite conditioning")
	}
	if _, err := ErdosRenyi(10, 0, stream); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := RandomRegular(20, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomRegular(20, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}
