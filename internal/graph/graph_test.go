package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges("tri", 3, []Edge{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestFromEdgesRejectsSelfLoop(t *testing.T) {
	if _, err := FromEdges("bad", 2, []Edge{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestFromEdgesRejectsDuplicate(t *testing.T) {
	if _, err := FromEdges("bad", 2, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges("bad", 2, []Edge{{0, 2}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestFromEdgesRejectsEmpty(t *testing.T) {
	if _, err := FromEdges("bad", 0, nil); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("want ErrEmptyGraph, got %v", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, err := FromEdges("star", 5, []Edge{{0, 4}, {0, 2}, {0, 1}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors of 0 not sorted: %v", nb)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(5, 0) {
		t.Error("missing ring edges")
	}
	if g.HasEdge(0, 3) || g.HasEdge(0, 0) || g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Error("phantom edges reported")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	g, err := FromEdges("g", 4, orig)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Edges()
	if len(got) != len(orig) {
		t.Fatalf("edge count %d, want %d", len(got), len(orig))
	}
	for _, e := range got {
		if e.U >= e.V {
			t.Errorf("edge %v not ordered", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v not reported by HasEdge", e)
		}
	}
}

func TestDegreeSumTwiceEdges(t *testing.T) {
	f := func(seed uint64) bool {
		stream := rng.New(seed)
		g, err := ErdosRenyi(20, 0.3, stream)
		if err != nil {
			return true // resampling failure is not this property's concern
		}
		return g.DegreeSum() == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectivityAndDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    func() (*Graph, error)
		diam int
	}{
		{"complete-8", func() (*Graph, error) { return Complete(8) }, 1},
		{"ring-8", func() (*Graph, error) { return Ring(8) }, 4},
		{"ring-9", func() (*Graph, error) { return Ring(9) }, 4},
		{"path-10", func() (*Graph, error) { return Path(10) }, 9},
		{"mesh-3x4", func() (*Graph, error) { return Mesh(3, 4) }, 5},
		{"torus-4x4", func() (*Graph, error) { return Torus(4, 4) }, 4},
		{"hypercube-4", func() (*Graph, error) { return Hypercube(4) }, 4},
		{"star-7", func() (*Graph, error) { return Star(7) }, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := c.g()
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsConnected() {
				t.Fatal("not connected")
			}
			d, err := g.Diameter()
			if err != nil {
				t.Fatal(err)
			}
			if d != c.diam {
				t.Errorf("diameter %d, want %d", d, c.diam)
			}
		})
	}
}

func TestDisconnectedDiameter(t *testing.T) {
	g, err := FromEdges("two", 4, []Edge{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if _, err := g.Diameter(); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("want ErrNotConnected, got %v", err)
	}
	if _, err := g.Eccentricity(0); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("want ErrNotConnected, got %v", err)
	}
}

func TestDMax(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.DMax(0, 1); got != 4 {
		t.Errorf("DMax(center,leaf) = %d, want 4", got)
	}
}
