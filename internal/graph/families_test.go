package graph

import "testing"

func TestCirculant(t *testing.T) {
	g, err := Circulant(10, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 20 {
		t.Errorf("C_10(1,2): n=%d m=%d, want 10, 20", g.N(), g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d)=%d, want 4", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("circulant disconnected")
	}
}

func TestCirculantAntipodal(t *testing.T) {
	// C_6(3): each vertex joined to its antipode only — perfect matching.
	g, err := Circulant(6, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 {
		t.Errorf("C_6(3) m=%d, want 3", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("degree(%d)=%d, want 1", v, g.Degree(v))
		}
	}
}

func TestCirculantValidation(t *testing.T) {
	if _, err := Circulant(2, []int{1}); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Circulant(10, nil); err == nil {
		t.Error("no offsets accepted")
	}
	if _, err := Circulant(10, []int{6}); err == nil {
		t.Error("offset > n/2 accepted")
	}
	if _, err := Circulant(10, []int{2, 2}); err == nil {
		t.Error("duplicate offset accepted")
	}
}

func TestCirculantEqualsRing(t *testing.T) {
	c, err := Circulant(9, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Ring(9)
	if err != nil {
		t.Fatal(err)
	}
	ce, re := c.Edges(), r.Edges()
	if len(ce) != len(re) {
		t.Fatalf("edge counts %d vs %d", len(ce), len(re))
	}
	for i := range ce {
		if ce[i] != re[i] {
			t.Fatalf("edge %d: %v vs %v", i, ce[i], re[i])
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g, err := CompleteBipartite(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 12 {
		t.Errorf("K_{3,4}: n=%d m=%d", g.N(), g.M())
	}
	// Part A has degree 4, part B degree 3.
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d)=%d, want 4", v, g.Degree(v))
		}
	}
	for v := 3; v < 7; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("degree(%d)=%d, want 3", v, g.Degree(v))
		}
	}
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("diam(K_{3,4})=%d, want 2", d)
	}
	if _, err := CompleteBipartite(0, 3); err == nil {
		t.Error("a=0 accepted")
	}
}

func TestTorusNDMatches2D(t *testing.T) {
	nd, err := TorusND([]int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if nd.N() != flat.N() || nd.M() != flat.M() {
		t.Fatalf("2D mismatch: n %d/%d m %d/%d", nd.N(), flat.N(), nd.M(), flat.M())
	}
	// Same vertex numbering (row-major), so edge sets must be equal.
	a, b := nd.Edges(), flat.Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTorusND3D(t *testing.T) {
	g, err := TorusND([]int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 27 {
		t.Errorf("n=%d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("degree(%d)=%d, want 6 (2 per dimension)", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("3-torus disconnected")
	}
}

func TestTorusNDValidation(t *testing.T) {
	if _, err := TorusND(nil); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := TorusND([]int{2, 4}); err == nil {
		t.Error("side 2 accepted")
	}
}

// TestFamilyConstructionDeterministic is the regression test for the
// map-iteration nondeterminism that used to lurk in Circulant: two
// independent constructions of the same instance must be deep-equal,
// CSR arrays included, for every family that assembles edges through a
// dedup map or nested loops.
func TestFamilyConstructionDeterministic(t *testing.T) {
	build := map[string]func() (*Graph, error){
		"circulant": func() (*Graph, error) { return Circulant(17, []int{1, 3, 5}) },
		"circulant-antipodal": func() (*Graph, error) {
			return Circulant(12, []int{2, 6})
		},
		"bipartite": func() (*Graph, error) { return CompleteBipartite(5, 8) },
		"torusnd":   func() (*Graph, error) { return TorusND([]int{3, 4, 5}) },
	}
	for name, f := range build {
		a, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for trial := 0; trial < 5; trial++ {
			b, err := f()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sameGraph(t, b, a)
		}
	}
}
