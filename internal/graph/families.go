package graph

import (
	"fmt"
	"sort"
)

// sortEdges orders an edge list lexicographically by (U, V), making
// edge lists assembled via map dedup deterministic.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
}

// Additional graph families beyond the Table-1 classes, used by the
// extended experiments: circulants (rings with chords), complete
// bipartite graphs, and d-dimensional tori (the general mesh model).

// Circulant returns the circulant graph C_n(offsets): vertex v is
// adjacent to v±o (mod n) for every offset o. Offsets must be in
// [1, n/2] and distinct; the offset n/2 (for even n) contributes a
// single edge per vertex pair.
func Circulant(n int, offsets []int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: circulant needs n >= 3, got %d", n)
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: circulant needs at least one offset")
	}
	seen := make(map[int]bool, len(offsets))
	for _, o := range offsets {
		if o < 1 || o > n/2 {
			return nil, fmt.Errorf("graph: offset %d outside [1,%d]", o, n/2)
		}
		if seen[o] {
			return nil, fmt.Errorf("graph: duplicate offset %d", o)
		}
		seen[o] = true
	}
	edgeSet := make(map[Edge]struct{}, n*len(offsets))
	for v := 0; v < n; v++ {
		for _, o := range offsets {
			w := (v + o) % n
			e := Edge{U: v, V: w}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			edgeSet[e] = struct{}{}
		}
	}
	edges := make([]Edge, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	// The map dedup above iterates in random order. FromEdges itself is
	// order-independent (it sorts every CSR row), but hand it — and any
	// future consumer of this list — a deterministic edge order anyway,
	// so the construction has no order-sensitive inputs at all.
	sortEdges(edges)
	return FromEdges(fmt.Sprintf("circulant-%d-%v", n, offsets), n, edges)
}

// CompleteBipartite returns K_{a,b} with part A = {0..a-1} and part
// B = {a..a+b-1}.
func CompleteBipartite(a, b int) (*Graph, error) {
	if a < 1 || b < 1 {
		return nil, fmt.Errorf("graph: K_{a,b} needs a,b >= 1, got %d,%d", a, b)
	}
	edges := make([]Edge, 0, a*b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return FromEdges(fmt.Sprintf("kbipartite-%d-%d", a, b), a+b, edges)
}

// TorusND returns the d-dimensional torus with the given side lengths
// (each >= 3). Vertex coordinates are mixed-radix encoded: the first
// dimension varies slowest.
func TorusND(sides []int) (*Graph, error) {
	if len(sides) == 0 {
		return nil, fmt.Errorf("graph: TorusND needs at least one dimension")
	}
	n := 1
	for _, s := range sides {
		if s < 3 {
			return nil, fmt.Errorf("graph: torus side %d < 3", s)
		}
		if n > 1<<24/s {
			return nil, fmt.Errorf("graph: torus too large")
		}
		n *= s
	}
	// stride[k] = product of sides after k.
	strides := make([]int, len(sides))
	strides[len(sides)-1] = 1
	for k := len(sides) - 2; k >= 0; k-- {
		strides[k] = strides[k+1] * sides[k+1]
	}
	edges := make([]Edge, 0, n*len(sides))
	for v := 0; v < n; v++ {
		rem := v
		for k, s := range sides {
			coord := rem / strides[k]
			rem %= strides[k]
			next := v + strides[k]*(((coord+1)%s)-coord)
			e := Edge{U: v, V: next}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			edges = append(edges, e)
		}
	}
	return FromEdges(fmt.Sprintf("torusnd-%v", sides), n, edges)
}
