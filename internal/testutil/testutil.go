// Package testutil holds small helpers shared by the smoke tests of the
// command and example mains.
package testutil

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// CaptureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed. A non-nil error from fn fails the test with
// the captured output attached. Not safe for parallel tests: os.Stdout
// is process-global.
func CaptureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	outC := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		outC <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-outC
	if errRun != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}
