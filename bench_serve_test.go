package repro

// Serving-path benchmarks: the internal/serve batcher and round loop in
// front of a million-node weighted shard engine — the lbd daemon's hot
// path. `make bench-serve` records them into BENCH_serve.json (with
// SERVE_SUSTAIN=10s for the sustained-throughput acceptance run); the
// bench gate diffs fresh runs against that baseline.

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/spectral"
	"repro/internal/task"
	"repro/internal/workload"
)

// buildWeightedServeEngine constructs the standard serving instance:
// a ring of n two-class-speed nodes with tasksPerNode weighted tasks
// placed speed-proportionally, on the weighted shard engine (P pinned
// at 8, as in BenchmarkWeightedShardRound).
func buildWeightedServeEngine(b *testing.B, n, tasksPerNode int) (*shard.WeightedEngine, *core.System) {
	b.Helper()
	g, err := graph.Ring(n)
	if err != nil {
		b.Fatal(err)
	}
	speeds, err := machine.TwoClass(n, 0.25, 2)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(g, speeds, core.WithLambda2(spectral.Lambda2Ring(n)))
	if err != nil {
		b.Fatal(err)
	}
	weights, err := task.RandomWeights(tasksPerNode*n, 0.1, 1, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	perNode, err := workload.WeightedProportional(sys.Speeds(), weights)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := shard.NewWeighted(sys, core.Algorithm2{}, perNode, shard.Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	return eng, sys
}

// servePsi0 computes Ψ₀ from a node-weight snapshot (the shard engine
// never materializes a WeightedState).
func servePsi0(sys *core.System, w []float64) float64 {
	var totalW float64
	for _, wi := range w {
		totalW += wi
	}
	speeds := sys.Speeds()
	avg := totalW / sys.STotal()
	s := 0.0
	for i, wi := range w {
		e := wi - avg*speeds[i]
		s += e * e / speeds[i]
	}
	return s
}

// BenchmarkBatcherSubmit measures the submission fast path in
// isolation: one op into a million-node pending batch (no round loop
// consuming). The dense batch vectors and touched lists are reused, so
// the uniform path is allocation-free after warm-up and the weighted
// path amortizes to the per-node weight-list growth.
func BenchmarkBatcherSubmit(b *testing.B) {
	const n = 1_000_000
	for _, mode := range []struct {
		name     string
		weighted bool
	}{{"uniform", false}, {"weighted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			// BatchSize out of reach and MaxWait far away: pure submit
			// cost, no flush signalling.
			bt, err := serve.NewBatcher(n, mode.weighted, 1<<30, time.Hour, nil)
			if err != nil {
				b.Fatal(err)
			}
			st := rng.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := serve.Op{Kind: serve.OpArrive, Node: st.Intn(n)}
				if mode.weighted {
					op.Kind = serve.OpArriveWeighted
					op.Weight = 0.1 + 0.9*st.Float64()
				}
				if _, err := bt.Submit(op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeRound measures one full serving round against a live
// 10⁶-node weighted shard engine: 8192 submissions batch into exactly
// one pre-round event batch (size-triggered flush), the loop applies
// it, journals it, and steps Algorithm 2. ns/op is the end-to-end
// admission period a saturated daemon sustains per round.
func BenchmarkServeRound(b *testing.B) {
	const n = 1_000_000
	const per = 8192
	eng, _ := buildWeightedServeEngine(b, n, 16)
	defer eng.Close()
	srv, err := serve.New[*core.WeightedState](eng, serve.Config{
		N: n, Weighted: true, BatchSize: per, MaxWait: time.Hour, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := rng.New(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var last serve.Ticket
		for k := 0; k < per; k++ {
			op := serve.Op{Kind: serve.OpArriveWeighted, Node: st.Intn(n), Weight: 0.1 + 0.9*st.Float64()}
			if k%4 == 3 {
				op = serve.Op{Kind: serve.OpCompleteWeighted, Node: st.Intn(n)}
			}
			t, err := srv.Submit(op)
			if err != nil {
				b.Fatal(err)
			}
			last = t
		}
		if _, err := last.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := srv.Stats()
	if stats.Rounds > 0 {
		b.ReportMetric(float64(stats.Submissions)/float64(stats.Rounds), "submissions/round")
	}
	if _, err := srv.Stop(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeSustained is the acceptance benchmark: the in-process
// open-loop generator drives Server.Submit at 100k ops/sec against a
// live 10⁶-node weighted shard engine for SERVE_SUSTAIN (default 2s as
// a smoke run; `make bench-serve` records the 10s run). Reported
// metrics: the achieved submission rate, client-observed admission
// latency, and the final Ψ₀ — bounded, because completions balance
// arrivals and the protocol keeps rebalancing the admitted batches.
func BenchmarkServeSustained(b *testing.B) {
	const n = 1_000_000
	dur := 2 * time.Second
	if s := os.Getenv("SERVE_SUSTAIN"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			b.Fatalf("SERVE_SUSTAIN=%q: %v", s, err)
		}
		dur = d
	}
	eng, sys := buildWeightedServeEngine(b, n, 16)
	defer eng.Close()
	srv, err := serve.New[*core.WeightedState](eng, serve.Config{N: n, Weighted: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var rep serve.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Offered rate 110k: the open-loop pacer's tail overrun shaves a
		// few percent off Submitted/Elapsed, and the acceptance line is
		// a *sustained* ≥100k/s, not a pacing-accuracy test.
		r, err := serve.RunLoad(context.Background(), srv.Submit, serve.LoadOpts{
			Rate: 110_000, Duration: dur, N: n,
			Weighted: true, CompleteEvery: 2, Seed: uint64(i)*7919 + 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.StopTimer()
	b.ReportMetric(rep.AchievedRate, "achieved-ops/s")
	b.ReportMetric(rep.AdmitP50Us, "admit-p50-us")
	b.ReportMetric(rep.AdmitP99Us, "admit-p99-us")
	stats := srv.Stats()
	b.ReportMetric(float64(stats.Rounds), "rounds")
	var psi0 float64
	srv.Do(func() { psi0 = servePsi0(sys, eng.NodeWeights()) })
	b.ReportMetric(psi0, "psi0")
	if _, err := srv.Stop(); err != nil {
		b.Fatal(err)
	}
}
