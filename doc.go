// Package repro is the root of a reproduction of Adolphs & Berenbrink,
// "Distributed Selfish Load Balancing with Weights and Speeds"
// (PODC 2012). The library lives under internal/ (core: the protocols
// and potential-function analysis; graph, spectral, matrix, rng,
// machine, task, workload, stats, diffusion, dist, experiments:
// the substrates), executables under cmd/, runnable examples under
// examples/, and bench_test.go in this package regenerates the paper's
// Table 1. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
