// Command distributed runs the protocol on the message-passing actor
// runtime: one goroutine per processor, channels as network links, loads
// and migrations exchanged strictly along graph edges — the paper's
// locality model made literal. It then verifies that the concurrent
// execution reproduces the sequential engine's trajectory bit-for-bit
// under the same seed (the determinism property package dist guarantees).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 6
	g, err := graph.Torus(side, side)
	if err != nil {
		return err
	}
	n := g.N()
	speeds, err := machine.TwoClass(n, 0.25, 2)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(g, speeds, core.WithLambda2(spectral.Lambda2Torus(side, side)))
	if err != nil {
		return err
	}
	const m = 18000
	counts, err := workload.AllOnOne(n, m, 0)
	if err != nil {
		return err
	}

	// Actor network: n goroutines, 2·deg messages per node per round.
	net, err := dist.NewNetwork(sys, counts, 0)
	if err != nil {
		return err
	}
	defer net.Close()

	// The actor network is a core.Engine, so the shared driver gives it
	// stop conditions and potential tracing exactly like the sequential
	// engine — one Drive call replaces the bespoke run loop.
	const seed = 7
	fmt.Printf("network: %s with %d processor goroutines\n", g, n)
	res, err := core.Drive[*core.UniformState](net, core.StopAtNash(),
		core.RunOpts{MaxRounds: 500_000, Seed: seed, TraceEvery: 2000})
	if err != nil {
		return err
	}
	rounds := res.Rounds
	fmt.Printf("actors:  exact NE after %d rounds (converged=%v, %d moves)\n", rounds, res.Converged, res.Moves)
	for _, p := range res.Trace {
		fmt.Printf("trace:   round %6d  Ψ₀=%-12.4g L_Δ=%.3f\n", p.Round, p.Psi0, p.LDelta)
	}

	// Replay sequentially with the same seed and compare trajectories.
	seq, err := core.NewUniformState(sys, counts)
	if err != nil {
		return err
	}
	base := rng.New(seed)
	proto := core.Algorithm1{}
	for r := 1; r <= rounds; r++ {
		proto.Step(seq, uint64(r), base)
	}
	mismatch := 0
	for i, c := range net.Counts() {
		if c != seq.Count(i) {
			mismatch++
		}
	}
	if mismatch == 0 {
		fmt.Println("replay:  sequential engine reproduced the concurrent trajectory exactly")
	} else {
		fmt.Printf("replay:  %d nodes differ (unexpected!)\n", mismatch)
	}

	st, err := net.State()
	if err != nil {
		return err
	}
	fmt.Printf("final:   Ψ₀=%.3g, L_Δ=%.3f, NE=%v\n", core.Psi0(st), core.LDelta(st), core.IsNash(st))
	return nil
}
