package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke executes the actor-network example end to end. Its
// output is itself the acceptance check for the dist engines: the
// sequential replay of the concurrent run must match exactly.
func TestRunSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, run)
	for _, want := range []string{
		"processor goroutines",
		"exact NE after",
		"sequential engine reproduced the concurrent trajectory exactly",
		"NE=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "unexpected!") {
		t.Errorf("concurrent and sequential trajectories diverged:\n%s", out)
	}
}
