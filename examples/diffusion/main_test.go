package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke executes the diffusion comparison end to end and checks
// that every scheme column is reported.
func TestRunSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, run)
	for _, want := range []string{"continuous", "rounded", "rand-rounded", "selfish", "instance:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
