// Command diffusion compares the selfish protocol against the
// (non-selfish) diffusive load-balancing family the paper relates it to
// (§1.2): continuous first-order diffusion, deterministic rounded-flow
// diffusion, and randomized-rounding diffusion, all driven by the same
// expected flow f_ij. It prints the residual imbalance L_Δ of each
// scheme over time on the same torus instance, showing that
//
//   - the protocol's mean behaviour tracks continuous diffusion,
//   - deterministic rounding stalls at a discretization floor,
//   - randomized rounding and the selfish protocol both cut through
//     that floor (they are unbiased), with the selfish protocol needing
//     no coordination at all.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 8
	g, err := graph.Torus(side, side)
	if err != nil {
		return err
	}
	n := g.N()
	sys, err := core.NewSystem(g, machine.Uniform(n),
		core.WithLambda2(spectral.Lambda2Torus(side, side)))
	if err != nil {
		return err
	}
	const m = 64_000
	counts, err := workload.AllOnOne(n, m, 0)
	if err != nil {
		return err
	}
	x := make([]float64, n)
	for i, c := range counts {
		x[i] = float64(c)
	}

	fmt.Printf("instance: %s, m=%d, all tasks on node 0\n", g, m)
	fmt.Printf("%8s %14s %14s %14s %14s\n",
		"rounds", "continuous", "rounded", "rand-rounded", "selfish")

	// The selfish protocol run is stateful; advance it incrementally.
	selfish, err := core.NewUniformState(sys, counts)
	if err != nil {
		return err
	}
	base := rng.New(1)
	proto := core.Algorithm1{}
	prevRounds := 0

	for _, rounds := range []int{10, 50, 100, 500, 2000, 10000} {
		cont, err := diffusion.Continuous(g, sys.Speeds(), x, 0, rounds)
		if err != nil {
			return err
		}
		det, err := diffusion.RoundedFlow(sys, counts, 0, rounds)
		if err != nil {
			return err
		}
		rr, err := diffusion.RandomizedRoundedFlow(sys, counts, 0, rounds, rng.New(2))
		if err != nil {
			return err
		}
		for r := prevRounds + 1; r <= rounds; r++ {
			proto.Step(selfish, uint64(r), base)
		}
		prevRounds = rounds

		fmt.Printf("%8d %14.3f %14.3f %14.3f %14.3f\n",
			rounds,
			ldeltaFloat(sys, cont),
			ldeltaInts(sys, det),
			ldeltaInts(sys, rr),
			core.LDelta(selfish))
	}

	fmt.Println("\nnote: 'continuous' is the idealized fractional process;")
	fmt.Println("'rounded' stalls at its discretization floor; randomized")
	fmt.Println("rounding and the selfish protocol keep balancing.")
	return nil
}

// ldeltaFloat computes L_Δ for a fractional task vector.
func ldeltaFloat(sys *core.System, x []float64) float64 {
	total := 0.0
	for _, v := range x {
		total += v
	}
	avg := total / sys.STotal()
	max := 0.0
	for i, v := range x {
		d := v/sys.Speed(i) - avg
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// ldeltaInts computes L_Δ for an integer task vector.
func ldeltaInts(sys *core.System, counts []int64) float64 {
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		return -1
	}
	return core.LDelta(st)
}
