// Command quickstart is the smallest end-to-end use of the library: build
// a network, drop all tasks on one processor, run the paper's Algorithm 1
// and watch the system converge to a Nash equilibrium.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 16-node ring of unit-speed processors with two fast machines.
	const n = 16
	g, err := graph.Ring(n)
	if err != nil {
		return err
	}
	speeds := machine.Uniform(n)
	speeds[3], speeds[11] = 4, 2 // two faster processors (s_min stays 1)

	sys, err := core.NewSystem(g, speeds, core.WithLambda2(spectral.Lambda2Ring(n)))
	if err != nil {
		return err
	}
	fmt.Printf("network: %s, Δ=%d, λ₂=%.4f, S=%.0f\n",
		g, sys.MaxDegree(), sys.Lambda2(), sys.STotal())

	// All m tasks start on processor 0 — the worst-case placement.
	const m = 2048
	counts, err := workload.AllOnOne(n, m, 0)
	if err != nil {
		return err
	}
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		return err
	}
	fmt.Printf("start:   Ψ₀=%.0f  L_Δ=%.2f\n", core.Psi0(st), core.LDelta(st))

	// Phase 1 (Theorem 1.1): run until Ψ₀ ≤ 4·ψ_c.
	threshold := 4 * sys.PsiCritical()
	res, err := core.RunUniform(st, core.Algorithm1{}, core.StopAtPsi0Below(threshold),
		core.RunOpts{MaxRounds: 500_000, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: Ψ₀ ≤ 4ψc=%.1f after %d rounds (theory ≤ %.0f), %d migrations\n",
		threshold, res.Rounds, 2*sys.ApproxPhaseRounds(m), res.Moves)

	// Phase 2 (Theorem 1.2): continue to an exact Nash equilibrium.
	res2, err := core.RunUniform(st, core.Algorithm1{}, core.StopAtNash(),
		core.RunOpts{MaxRounds: 2_000_000, Seed: 43})
	if err != nil {
		return err
	}
	fmt.Printf("phase 2: exact NE after %d more rounds (theory ≤ %.0f)\n",
		res2.Rounds, sys.ExactPhaseRounds(1))

	fmt.Println("final loads (count/speed per node):")
	for i := 0; i < n; i++ {
		fmt.Printf("  node %2d: %4d tasks, speed %g, load %.2f\n",
			i, st.Count(i), sys.Speed(i), st.Load(i))
	}
	fmt.Printf("is Nash equilibrium: %v\n", core.IsNash(st))
	return nil
}
