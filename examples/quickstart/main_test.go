package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke executes the example end to end and checks the headline
// output lines.
func TestRunSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, run)
	for _, want := range []string{
		"phase 1:",
		"phase 2: exact NE after",
		"is Nash equilibrium: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
