package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke executes the heterogeneous-cluster example end to end
// and checks the headline verification lines.
func TestRunSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, run)
	for _, want := range []string{"speed 4:", "speed 2:", "speed 1:", "max deviation"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
