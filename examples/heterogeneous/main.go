// Command heterogeneous models the motivating scenario of the paper's
// introduction: a cluster where processors have different speeds and
// selfish jobs only see their immediate neighborhood. A 8×8 torus
// "datacenter fabric" mixes one fast rack (speed 4), a few medium
// machines (speed 2) and a majority of unit-speed nodes; jobs arrive in a
// burst on one node and selfishly migrate toward lower-load machines.
//
// The example verifies the two headline predictions of Theorems 1.1/1.2:
// the potential collapses geometrically to the 4ψ_c band well within
// 2T = 4γ·ln(m/n) rounds, and the final equilibrium assigns load
// proportional to speed (up to the unit slack of a Nash equilibrium).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 8
	g, err := graph.Torus(side, side)
	if err != nil {
		return err
	}
	n := g.N()

	// Speed plan: nodes 0..7 form the fast "rack" (speed 4), every
	// eighth node is medium (speed 2), the rest are unit speed.
	speeds := machine.Uniform(n)
	for i := 0; i < side; i++ {
		speeds[i] = 4
	}
	for i := side; i < n; i += side {
		speeds[i] = 2
	}
	sys, err := core.NewSystem(g, speeds, core.WithLambda2(spectral.Lambda2Torus(side, side)))
	if err != nil {
		return err
	}

	const m = 100_000
	counts, err := workload.AllOnOne(n, m, n-1) // burst lands far from the fast rack
	if err != nil {
		return err
	}
	st, err := core.NewUniformState(sys, counts)
	if err != nil {
		return err
	}

	fmt.Printf("cluster: %s, S=%.0f, s_max=%g, λ₂=%.4f\n", g, sys.STotal(), sys.SMax(), sys.Lambda2())
	fmt.Printf("burst:   %d jobs on node %d; Ψ₀=%.3g\n", m, n-1, core.Psi0(st))

	threshold := 4 * sys.PsiCritical()
	budget := 2 * sys.ApproxPhaseRounds(m)
	res, err := core.RunUniform(st, core.Algorithm1{}, core.StopAtPsi0Below(threshold),
		core.RunOpts{MaxRounds: 3_000_000, Seed: 2026, TraceEvery: 50})
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: Ψ₀ ≤ 4ψ_c = %.0f after %d rounds (theory budget %.0f) — %.1f%% of budget\n",
		threshold, res.Rounds, budget, 100*float64(res.Rounds)/budget)

	// Geometric decay check: fit log Ψ₀ against rounds on the trace.
	var xs, ys []float64
	for _, p := range res.Trace {
		if p.Psi0 > threshold {
			xs = append(xs, float64(p.Round))
			ys = append(ys, p.Psi0)
		}
	}
	if len(xs) >= 3 {
		// log Ψ₀(t) ≈ log Ψ₀(0) + t·log(1−1/γ).
		ly := make([]float64, len(ys))
		for i, v := range ys {
			ly[i] = math.Log(v)
		}
		fit, err := stats.FitLinear(xs, ly)
		if err == nil {
			fmt.Printf("decay:   measured per-round log-drop %.3e vs theory ≥ %.3e (1/γ=%.3e)\n",
				-fit.Slope, 1/sys.Gamma(), 1/sys.Gamma())
		}
	}

	if _, err := core.RunUniform(st, core.Algorithm1{}, core.StopAtNash(),
		core.RunOpts{MaxRounds: 20_000_000, Seed: 2027, CheckEvery: 8}); err != nil {
		return err
	}
	fmt.Println("phase 2: exact Nash equilibrium reached")

	// At equilibrium, report load per speed class.
	classLoad := map[float64]*stats.Welford{}
	for i := 0; i < n; i++ {
		w, ok := classLoad[sys.Speed(i)]
		if !ok {
			w = &stats.Welford{}
			classLoad[sys.Speed(i)] = w
		}
		w.Add(st.Load(i))
	}
	fmt.Printf("equilibrium loads (average load m/S = %.2f):\n", st.AverageLoad())
	for _, s := range []float64{1, 2, 4} {
		if w, ok := classLoad[s]; ok {
			fmt.Printf("  speed %g: mean load %.2f over %d machines\n", s, w.Mean(), w.N())
		}
	}
	fmt.Printf("max deviation L_Δ = %.3f (Nash slack ≤ 1)\n", core.LDelta(st))
	return nil
}
