// Command weighted demonstrates the Section-4 model: heterogeneous job
// sizes on machines with speeds. It races the paper's Algorithm 2
// (weight-independent migration threshold 1/sⱼ) against the
// reconstructed SODA'11 baseline (per-task threshold wℓ/sⱼ) from
// identical starts, illustrating the design difference the paper
// analyses: under Algorithm 2 either all tasks on a node have an
// incentive over an edge or none do.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const d = 5 // 32-node hypercube
	g, err := graph.Hypercube(d)
	if err != nil {
		return err
	}
	n := g.N()
	stream := rng.New(424242)

	speeds, err := machine.RandomIntegers(n, 3, stream.Split(1))
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(g, speeds, core.WithLambda2(spectral.Lambda2Hypercube(d)))
	if err != nil {
		return err
	}

	// A bimodal job mix: 20% heavy jobs (weight 1.0), 80% light (0.15).
	const m = 4000
	weights, err := task.Bimodal(m, 0.2, 1.0, 0.15, stream.Split(2))
	if err != nil {
		return err
	}
	placement, err := workload.WeightedUniformRandom(n, weights, stream.Split(3))
	if err != nil {
		return err
	}
	// Skew it: pile node 0 high with extra heavy jobs.
	extra, err := task.UniformWeights(400, 1.0)
	if err != nil {
		return err
	}
	placement[0] = append(placement[0], extra...)

	stPaper, err := core.NewWeightedState(sys, placement)
	if err != nil {
		return err
	}
	stBase := stPaper.Clone()

	fmt.Printf("network: %s, s_max=%g, total weight W=%.1f over %d jobs\n",
		g, sys.SMax(), stPaper.TotalWeight(), stPaper.TaskCount())
	fmt.Printf("start:   Ψ₀=%.4g, L_Δ=%.2f\n", core.WeightedPsi0(stPaper), core.WeightedLDelta(stPaper))
	fmt.Printf("theory:  Algorithm 2 reaches Ψ₀ ≤ 4ψ_c = %.0f within O(ln(m/n)·Δ/λ₂·s²max/smin) ≈ %.0f rounds\n",
		4*sys.PsiCriticalWeighted(), sys.WeightedApproxPhaseRounds(int64(stPaper.TaskCount())))

	const eps = 0.2
	resPaper, err := core.RunWeighted(stPaper, core.Algorithm2{}, core.StopAtWeightedApproxNash(eps),
		core.RunOpts{MaxRounds: 1_000_000, Seed: 99})
	if err != nil {
		return fmt.Errorf("algorithm 2: %w", err)
	}
	fmt.Printf("\nalgorithm2 (paper):  %.2g-approx NE after %5d rounds, %7d migrations\n",
		eps, resPaper.Rounds, resPaper.Moves)
	fmt.Printf("                     threshold-NE=%v, exact-NE=%v, final L_Δ=%.3f\n",
		core.IsWeightedThresholdNE(stPaper), core.IsWeightedNash(stPaper), core.WeightedLDelta(stPaper))

	resBase, err := core.RunWeighted(stBase, core.BaselineWeighted{}, core.StopAtWeightedApproxNash(eps),
		core.RunOpts{MaxRounds: 1_000_000, Seed: 99})
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fmt.Printf("baseline (SODA'11):  %.2g-approx NE after %5d rounds, %7d migrations\n",
		eps, resBase.Rounds, resBase.Moves)
	fmt.Printf("                     threshold-NE=%v, exact-NE=%v, final L_Δ=%.3f\n",
		core.IsWeightedThresholdNE(stBase), core.IsWeightedNash(stBase), core.WeightedLDelta(stBase))

	fmt.Printf("\nmigration volume:    baseline moved %.1f× the weight-trips of algorithm 2\n",
		float64(resBase.Moves)/float64(resPaper.Moves))
	return nil
}
