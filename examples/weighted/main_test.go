package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke executes the Algorithm 2 vs baseline race end to end.
func TestRunSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, run)
	for _, want := range []string{"algorithm 2", "baseline", "migration volume:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
